//! Telemetry sanitization: a defensive stage between span ingestion and
//! windowed reconstruction.
//!
//! Raw capture streams carry duplicates, truncated (response-less)
//! records, non-causal timestamps, late arrivals, and clock skew (see
//! `tw_sim::faults` for the fault taxonomy, DESIGN.md §9 for the failure
//! model). Feeding them to the engine unfiltered corrupts skip budgets,
//! poisons the delay registry, and breaks window assignment. The
//! [`Sanitizer`] filters and repairs the stream record by record:
//!
//! 1. **truncation** — records whose response was never observed carry
//!    zeroed response timestamps and are rejected (they cannot anchor an
//!    interval);
//! 2. **dedup** — bounded-memory rejection of re-transmitted `RpcId`s
//!    (a ring of the most recent ids, so memory stays O(capacity));
//! 3. **causality** — each side of a record is checked on its *own*
//!    clock (`recv_resp < send_req` or `send_resp < recv_req` ⇒ negative
//!    duration ⇒ corrupt). Cross-side checks are deliberately not
//!    grounds for rejection: `send_req > recv_req` is what clock skew
//!    looks like, and skew is corrected, not dropped;
//! 4. **clock-skew estimation/correction** — per caller→callee service
//!    edge, an NTP-style offset estimate
//!    `θ̂ = ((recv_req − send_req) − (recv_resp − send_resp)) / 2`
//!    (callee clock minus caller clock, unbiased under symmetric network
//!    delay) is tracked with an EWMA. Edge estimates are resolved into
//!    per-service offsets by BFS over the service graph anchored at
//!    `EXTERNAL` (offset 0), and every timestamp is shifted into that
//!    common frame. Resolving per *service* (not per edge) is what keeps
//!    each process's incoming and outgoing spans mutually consistent —
//!    correcting each record against only its own edge would tear a
//!    process's two span sides into different clock frames;
//! 5. **late arrival** — optionally, records arriving more than a
//!    horizon behind the sanitizer's watermark are dropped with an
//!    explicit counter instead of landing in long-closed windows.
//!
//! Every rejection increments a per-reason counter in [`SanitizeStats`]
//! (the ingest-metrics idiom of [`crate::IngestStats`]). The stage is
//! strictly sequential and allocation-light, so it is deterministic for
//! a given input order — the property the pipeline's cross-thread
//! determinism tests rely on.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::thread::JoinHandle;
use tw_model::ids::{RpcId, ServiceId};
use tw_model::span::{RpcRecord, EXTERNAL};
use tw_model::time::Nanos;
use tw_telemetry::{Counter, Gauge, Registry};

/// Sanitizer configuration.
#[derive(Debug, Clone)]
pub struct SanitizeConfig {
    /// How many recent `RpcId`s the dedup filter remembers. Duplicates
    /// arriving further apart than this pass through; the filter's
    /// memory is bounded regardless of stream length.
    pub dedup_capacity: usize,
    /// Estimate and correct per-service clock skew. When disabled,
    /// records pass through with their original timestamps.
    pub skew_correction: bool,
    /// EWMA weight for new per-edge offset samples.
    pub skew_alpha: f64,
    /// Offsets smaller than this (ns) are noise and not applied — a
    /// clean stream must pass through bit-identical.
    pub skew_min_ns: u64,
    /// Re-solve the per-service offsets from the edge EWMAs every this
    /// many records (count-based, so the stage stays deterministic).
    pub skew_resolve_interval: u64,
    /// Drop records whose corrected `recv_resp` is more than this behind
    /// the watermark. `None` admits arbitrarily late records.
    pub late_horizon: Option<Nanos>,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            dedup_capacity: 65_536,
            skew_correction: true,
            skew_alpha: 0.1,
            skew_min_ns: 50_000, // 50µs: well above sim network jitter
            skew_resolve_interval: 64,
            late_horizon: None,
        }
    }
}

/// Per-reason counters for one sanitizer's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeStats {
    pub received: u64,
    pub passed: u64,
    /// Rejected: `RpcId` seen within the dedup window.
    pub duplicates: u64,
    /// Rejected: response timestamps missing (zeroed).
    pub truncated: u64,
    /// Rejected: negative duration on the caller or callee clock.
    pub non_causal: u64,
    /// Rejected: arrived beyond the late horizon.
    pub late: u64,
    /// Passed, but with timestamps shifted by a skew offset.
    pub skew_corrected: u64,
}

impl SanitizeStats {
    pub fn rejected(&self) -> u64 {
        self.duplicates + self.truncated + self.non_causal + self.late
    }
}

/// Registry-backed counters for one sanitizer. [`SanitizeStats`] is a
/// snapshot view over these series; the drop reasons share one family
/// under a `reason` label so dashboards can stack them.
#[derive(Debug, Clone)]
struct SanitizeMetrics {
    /// Kept for lazily registering per-service skew gauges.
    registry: Registry,
    received: Counter,
    passed: Counter,
    dropped_duplicate: Counter,
    dropped_truncated: Counter,
    dropped_non_causal: Counter,
    dropped_late: Counter,
    skew_corrected: Counter,
}

impl SanitizeMetrics {
    fn new(registry: &Registry) -> Self {
        let dropped = |reason: &str| {
            registry.counter_with(
                "tw_sanitize_dropped_total",
                "Records rejected by the sanitizer, by reason (DESIGN.md §9).",
                &[("reason", reason)],
            )
        };
        SanitizeMetrics {
            registry: registry.clone(),
            received: registry.counter(
                "tw_sanitize_received_total",
                "Records entering the sanitizer.",
            ),
            passed: registry.counter(
                "tw_sanitize_passed_total",
                "Records forwarded downstream (possibly skew-corrected).",
            ),
            dropped_duplicate: dropped("duplicate"),
            dropped_truncated: dropped("truncated"),
            dropped_non_causal: dropped("non_causal"),
            dropped_late: dropped("late"),
            skew_corrected: registry.counter(
                "tw_sanitize_skew_corrected_total",
                "Records passed with timestamps shifted into the anchor clock frame.",
            ),
        }
    }

    fn snapshot(&self) -> SanitizeStats {
        SanitizeStats {
            received: self.received.get(),
            passed: self.passed.get(),
            duplicates: self.dropped_duplicate.get(),
            truncated: self.dropped_truncated.get(),
            non_causal: self.dropped_non_causal.get(),
            late: self.dropped_late.get(),
            skew_corrected: self.skew_corrected.get(),
        }
    }
}

/// Label value for a per-service series.
fn service_label(svc: ServiceId) -> String {
    if svc == EXTERNAL {
        "external".to_string()
    } else {
        svc.0.to_string()
    }
}

/// One per-edge EWMA offset estimate (ns, callee minus caller).
#[derive(Debug, Clone, Copy)]
struct EdgeSkew {
    offset: f64,
    samples: u64,
}

/// The sanitizer: a sequential filter over an `RpcRecord` stream.
#[derive(Debug)]
pub struct Sanitizer {
    cfg: SanitizeConfig,
    metrics: SanitizeMetrics,
    /// Per-service `tw_sanitize_skew_offset_ns` gauges, registered lazily
    /// as services appear in resolved offsets.
    skew_gauges: BTreeMap<ServiceId, Gauge>,
    seen: HashSet<RpcId>,
    ring: VecDeque<RpcId>,
    /// EWMA offset per (caller service, callee service) edge.
    edges: BTreeMap<(ServiceId, ServiceId), EdgeSkew>,
    /// Per-service offsets resolved from `edges` (ns, relative to the
    /// anchor frame). Subtracted from every timestamp that service
    /// recorded.
    offsets: BTreeMap<ServiceId, f64>,
    records_since_resolve: u64,
    watermark: Nanos,
}

impl Sanitizer {
    /// New sanitizer counting into a private registry; use
    /// [`new_in`](Sanitizer::new_in) to share one with the pipeline.
    pub fn new(cfg: SanitizeConfig) -> Self {
        Self::new_in(cfg, &Registry::new())
    }

    /// [`new`](Sanitizer::new) with an explicit telemetry registry: the
    /// `tw_sanitize_*` series land there. One sanitizer per registry —
    /// two sanitizers sharing a registry would sum into the same series.
    pub fn new_in(cfg: SanitizeConfig, registry: &Registry) -> Self {
        Sanitizer {
            cfg,
            metrics: SanitizeMetrics::new(registry),
            skew_gauges: BTreeMap::new(),
            seen: HashSet::new(),
            ring: VecDeque::new(),
            edges: BTreeMap::new(),
            offsets: BTreeMap::new(),
            records_since_resolve: 0,
            watermark: Nanos::ZERO,
        }
    }

    pub fn stats(&self) -> SanitizeStats {
        self.metrics.snapshot()
    }

    /// Current offset estimate (ns, callee minus caller) for one service
    /// edge, if any samples were seen.
    pub fn skew_estimate(&self, caller: ServiceId, callee: ServiceId) -> Option<f64> {
        self.edges.get(&(caller, callee)).map(|e| e.offset)
    }

    /// Process one record: `Some(clean)` to forward, `None` if rejected
    /// (the reason is counted in [`SanitizeStats`]).
    pub fn sanitize(&mut self, rec: RpcRecord) -> Option<RpcRecord> {
        self.metrics.received.inc();

        // 1. Truncated: the capture layer never saw a response. Without
        // response timestamps the record cannot form an interval.
        if rec.send_resp == Nanos::ZERO || rec.recv_resp == Nanos::ZERO {
            self.metrics.dropped_truncated.inc();
            return None;
        }

        // 2. Bounded-memory dedup.
        if self.seen.contains(&rec.rpc) {
            self.metrics.dropped_duplicate.inc();
            return None;
        }
        self.seen.insert(rec.rpc);
        self.ring.push_back(rec.rpc);
        if self.ring.len() > self.cfg.dedup_capacity {
            if let Some(old) = self.ring.pop_front() {
                self.seen.remove(&old);
            }
        }

        // 3. Causality, one clock at a time: each side's duration must
        // be non-negative on its own clock. These checks are immune to
        // cross-host skew, so a violation means corruption, not skew.
        if rec.recv_resp < rec.send_req || rec.send_resp < rec.recv_req {
            self.metrics.dropped_non_causal.inc();
            return None;
        }

        // 4. Skew: update this edge's estimate, periodically re-solve
        // the per-service offsets, and shift the record into the common
        // frame.
        let mut rec = rec;
        if self.cfg.skew_correction {
            self.observe_skew(&rec);
            self.records_since_resolve += 1;
            if self.offsets.is_empty()
                || self.records_since_resolve >= self.cfg.skew_resolve_interval
            {
                self.resolve_offsets();
                self.records_since_resolve = 0;
            }
            if self.correct(&mut rec) {
                self.metrics.skew_corrected.inc();
            }
        }

        // 5. Late arrival beyond the horizon.
        if let Some(horizon) = self.cfg.late_horizon {
            if rec.recv_resp + horizon < self.watermark {
                self.metrics.dropped_late.inc();
                return None;
            }
        }
        self.watermark = self.watermark.max(rec.recv_resp);

        self.metrics.passed.inc();
        Some(rec)
    }

    /// Batch convenience: sanitize in order, keeping survivors.
    pub fn sanitize_batch(
        &mut self,
        records: impl IntoIterator<Item = RpcRecord>,
    ) -> Vec<RpcRecord> {
        records
            .into_iter()
            .filter_map(|r| self.sanitize(r))
            .collect()
    }

    /// Fold one record's NTP-style offset sample into its edge EWMA.
    fn observe_skew(&mut self, rec: &RpcRecord) {
        let fwd = rec.recv_req.0 as i128 - rec.send_req.0 as i128;
        let bwd = rec.recv_resp.0 as i128 - rec.send_resp.0 as i128;
        let sample = (fwd - bwd) as f64 / 2.0;
        if !sample.is_finite() {
            return;
        }
        let key = (rec.caller, rec.callee.service);
        match self.edges.get_mut(&key) {
            Some(edge) => {
                edge.offset += self.cfg.skew_alpha * (sample - edge.offset);
                edge.samples += 1;
            }
            None => {
                self.edges.insert(
                    key,
                    EdgeSkew {
                        offset: sample,
                        samples: 1,
                    },
                );
            }
        }
    }

    /// Resolve edge offsets into per-service offsets by BFS over the
    /// (undirected view of the) service graph. `EXTERNAL` anchors the
    /// frame at 0 when present; any disconnected component is anchored
    /// at its smallest service id. Deterministic: adjacency and visit
    /// order come from `BTreeMap` iteration.
    fn resolve_offsets(&mut self) {
        let mut adjacency: BTreeMap<ServiceId, Vec<(ServiceId, f64)>> = BTreeMap::new();
        for (&(caller, callee), edge) in &self.edges {
            // offset[callee] = offset[caller] + θ(caller→callee)
            adjacency
                .entry(caller)
                .or_default()
                .push((callee, edge.offset));
            adjacency
                .entry(callee)
                .or_default()
                .push((caller, -edge.offset));
        }
        let mut offsets: BTreeMap<ServiceId, f64> = BTreeMap::new();
        let anchors: Vec<ServiceId> = std::iter::once(EXTERNAL)
            .filter(|s| adjacency.contains_key(s))
            .chain(adjacency.keys().copied())
            .collect();
        for anchor in anchors {
            if offsets.contains_key(&anchor) {
                continue;
            }
            offsets.insert(anchor, 0.0);
            let mut queue = VecDeque::from([anchor]);
            while let Some(svc) = queue.pop_front() {
                let base = offsets[&svc];
                for &(next, delta) in adjacency.get(&svc).into_iter().flatten() {
                    if let std::collections::btree_map::Entry::Vacant(slot) = offsets.entry(next) {
                        slot.insert(base + delta);
                        queue.push_back(next);
                    }
                }
            }
        }
        // Publish the resolved offsets as per-service gauges (registered
        // lazily the first time a service appears).
        for (&svc, &offset) in &offsets {
            let gauge = self.skew_gauges.entry(svc).or_insert_with(|| {
                self.metrics.registry.gauge_with(
                    "tw_sanitize_skew_offset_ns",
                    "Resolved per-service clock offset (ns) relative to the anchor frame.",
                    &[("service", &service_label(svc))],
                )
            });
            gauge.set(offset);
        }
        self.offsets = offsets;
    }

    /// Shift a record's timestamps into the anchor frame. Returns true
    /// if any side actually moved.
    fn correct(&self, rec: &mut RpcRecord) -> bool {
        let mut moved = false;
        let caller_off = self.offsets.get(&rec.caller).copied().unwrap_or(0.0);
        if caller_off.abs() > self.cfg.skew_min_ns as f64 {
            rec.send_req = unshift(rec.send_req, caller_off);
            rec.recv_resp = unshift(rec.recv_resp, caller_off);
            moved = true;
        }
        let callee_off = self
            .offsets
            .get(&rec.callee.service)
            .copied()
            .unwrap_or(0.0);
        if callee_off.abs() > self.cfg.skew_min_ns as f64 {
            rec.recv_req = unshift(rec.recv_req, callee_off);
            rec.send_resp = unshift(rec.send_resp, callee_off);
            moved = true;
        }
        moved
    }
}

/// Subtract an offset (ns, may be negative/fractional) from a timestamp,
/// clamping at zero.
fn unshift(ts: Nanos, offset_ns: f64) -> Nanos {
    let shifted = ts.0 as i128 - offset_ns as i128;
    Nanos(shifted.clamp(0, u64::MAX as i128) as u64)
}

/// Handle to a running sanitizer thread (see [`SanitizerStage::spawn`]).
///
/// The stage's counters are ordinary registry series (no parallel
/// bookkeeping): [`stats`](SanitizerStage::stats) reads the same
/// `tw_sanitize_*` counters a scrape endpoint would.
pub struct SanitizerStage {
    thread: Option<JoinHandle<SanitizeStats>>,
    metrics: SanitizeMetrics,
}

impl SanitizerStage {
    /// Spawn a sanitizer as a pipeline stage: records sent to the
    /// returned `Sender` are sanitized in arrival order and survivors
    /// forwarded to `out` — wire it between an [`crate::IngestServer`]
    /// and an [`crate::OnlineEngine`]'s ingest handle. Closing the
    /// returned sender drains and stops the stage; `out` is dropped with
    /// it, propagating shutdown downstream.
    ///
    /// Counters go to a private registry; use
    /// [`spawn_in`](SanitizerStage::spawn_in) to share one.
    pub fn spawn(
        cfg: SanitizeConfig,
        out: Sender<RpcRecord>,
        capacity: usize,
    ) -> (Sender<RpcRecord>, SanitizerStage) {
        Self::spawn_in(cfg, out, capacity, &Registry::new())
    }

    /// [`spawn`](SanitizerStage::spawn) with an explicit telemetry
    /// registry: the `tw_sanitize_*` series land there.
    pub fn spawn_in(
        cfg: SanitizeConfig,
        out: Sender<RpcRecord>,
        capacity: usize,
        registry: &Registry,
    ) -> (Sender<RpcRecord>, SanitizerStage) {
        let (tx, rx): (Sender<RpcRecord>, Receiver<RpcRecord>) = bounded(capacity.max(1));
        let mut sanitizer = Sanitizer::new_in(cfg, registry);
        let metrics = sanitizer.metrics.clone();
        let thread = std::thread::spawn(move || {
            for rec in rx.iter() {
                if let Some(clean) = sanitizer.sanitize(rec) {
                    if out.send(clean).is_err() {
                        break; // downstream gone: drain and exit
                    }
                }
            }
            sanitizer.stats()
        });
        (
            tx,
            SanitizerStage {
                thread: Some(thread),
                metrics,
            },
        )
    }

    /// Live snapshot of the per-reason counters.
    pub fn stats(&self) -> SanitizeStats {
        self.metrics.snapshot()
    }

    /// Wait for the stage to drain (close its input sender first) and
    /// return the final counters.
    pub fn join(mut self) -> SanitizeStats {
        match self.thread.take() {
            Some(t) => t.join().expect("sanitizer thread panicked"),
            None => self.metrics.snapshot(),
        }
    }
}

impl Drop for SanitizerStage {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_model::ids::{Endpoint, OperationId};

    fn rec(rpc: u64, at_us: u64) -> RpcRecord {
        RpcRecord {
            rpc: RpcId(rpc),
            caller: EXTERNAL,
            caller_replica: 0,
            callee: Endpoint::new(ServiceId(0), OperationId(0)),
            callee_replica: 0,
            send_req: Nanos::from_micros(at_us),
            recv_req: Nanos::from_micros(at_us + 10),
            send_resp: Nanos::from_micros(at_us + 100),
            recv_resp: Nanos::from_micros(at_us + 110),
            caller_thread: None,
            callee_thread: None,
        }
    }

    #[test]
    fn clean_stream_passes_bit_identical() {
        let mut s = Sanitizer::new(SanitizeConfig::default());
        let input: Vec<RpcRecord> = (0..100).map(|i| rec(i, i * 500)).collect();
        let out = s.sanitize_batch(input.clone());
        assert_eq!(out, input);
        let stats = s.stats();
        assert_eq!(stats.received, 100);
        assert_eq!(stats.passed, 100);
        assert_eq!(stats.rejected(), 0);
        assert_eq!(stats.skew_corrected, 0, "no skew invented on clean input");
    }

    #[test]
    fn duplicates_rejected_within_bounded_memory() {
        let mut s = Sanitizer::new(SanitizeConfig {
            dedup_capacity: 2,
            ..SanitizeConfig::default()
        });
        assert!(s.sanitize(rec(1, 0)).is_some());
        assert!(s.sanitize(rec(1, 0)).is_none(), "immediate dup rejected");
        assert!(s.sanitize(rec(2, 500)).is_some());
        assert!(s.sanitize(rec(3, 1_000)).is_some());
        // Id 1 has been evicted from the 2-slot ring by now: a very late
        // duplicate passes — the price of bounded memory.
        assert!(s.sanitize(rec(1, 0)).is_some());
        assert_eq!(s.stats().duplicates, 1);
        assert!(s.ring.len() <= 2);
        assert!(s.seen.len() <= 2);
    }

    #[test]
    fn truncated_and_non_causal_rejected() {
        let mut s = Sanitizer::new(SanitizeConfig::default());
        let mut truncated = rec(1, 100);
        truncated.send_resp = Nanos::ZERO;
        truncated.recv_resp = Nanos::ZERO;
        assert!(s.sanitize(truncated).is_none());
        assert_eq!(s.stats().truncated, 1);

        // Callee-side negative duration: response sent before request
        // received, on the callee's own clock.
        let mut corrupt = rec(2, 100);
        corrupt.send_resp = corrupt.recv_req - Nanos(1_000);
        assert!(s.sanitize(corrupt).is_none());
        assert_eq!(s.stats().non_causal, 1);

        // Caller-side negative duration.
        let mut corrupt = rec(3, 100);
        corrupt.recv_resp = corrupt.send_req - Nanos(1_000);
        assert!(s.sanitize(corrupt).is_none());
        assert_eq!(s.stats().non_causal, 2);
    }

    #[test]
    fn skew_estimated_and_corrected_per_edge() {
        let mut s = Sanitizer::new(SanitizeConfig {
            skew_resolve_interval: 8,
            ..SanitizeConfig::default()
        });
        let skew = 5_000_000i64; // callee clock 5ms fast
        let clean: Vec<RpcRecord> = (0..200).map(|i| rec(i, 1_000 + i * 500)).collect();
        let skewed: Vec<RpcRecord> = clean
            .iter()
            .map(|r| {
                let mut r = *r;
                r.recv_req = Nanos(r.recv_req.0 + skew as u64);
                r.send_resp = Nanos(r.send_resp.0 + skew as u64);
                r
            })
            .collect();
        let out = s.sanitize_batch(skewed);
        assert_eq!(out.len(), 200, "skewed records are repaired, not dropped");
        let est = s.skew_estimate(EXTERNAL, ServiceId(0)).unwrap();
        assert!(
            (est - skew as f64).abs() < 1_000.0,
            "estimate {est} vs true {skew}"
        );
        assert!(s.stats().skew_corrected > 150);
        // After convergence, corrected timestamps land within 1µs of the
        // true (unskewed) values.
        let last_out = out.last().unwrap();
        let last_clean = clean.last().unwrap();
        let err = (last_out.recv_req.0 as i64 - last_clean.recv_req.0 as i64).abs();
        assert!(err < 1_000, "residual skew {err}ns");
        // Caller-side (EXTERNAL anchor) timestamps untouched.
        assert_eq!(last_out.send_req, last_clean.send_req);
    }

    #[test]
    fn skew_chain_keeps_process_views_consistent() {
        // EXTERNAL → A → B with B's clock 2ms fast: A's offset resolves
        // to ~0, B's to ~2ms, so A's incoming span and A's outgoing span
        // (the A→B record's caller side) stay in one frame.
        let mut s = Sanitizer::new(SanitizeConfig {
            skew_resolve_interval: 4,
            ..SanitizeConfig::default()
        });
        let skew = 2_000_000u64;
        let a = ServiceId(0);
        let b = ServiceId(1);
        for i in 0..100u64 {
            let base = 1_000_000 + i * 1_000_000;
            let root = RpcRecord {
                rpc: RpcId(i * 2),
                caller: EXTERNAL,
                caller_replica: 0,
                callee: Endpoint::new(a, OperationId(0)),
                callee_replica: 0,
                send_req: Nanos(base),
                recv_req: Nanos(base + 10_000),
                send_resp: Nanos(base + 400_000),
                recv_resp: Nanos(base + 410_000),
                caller_thread: None,
                callee_thread: None,
            };
            // A→B child, with B's stamps (recv_req/send_resp) skewed.
            let child = RpcRecord {
                rpc: RpcId(i * 2 + 1),
                caller: a,
                caller_replica: 0,
                callee: Endpoint::new(b, OperationId(0)),
                callee_replica: 0,
                send_req: Nanos(base + 50_000),
                recv_req: Nanos(base + 60_000 + skew),
                send_resp: Nanos(base + 200_000 + skew),
                recv_resp: Nanos(base + 210_000),
                caller_thread: None,
                callee_thread: None,
            };
            s.sanitize(root);
            if let Some(clean) = s.sanitize(child) {
                if i > 50 {
                    // Child's callee side pulled back into A's frame:
                    // nesting inside A's span [recv_req, send_resp] holds.
                    assert!(clean.recv_req.0 >= base + 10_000);
                    assert!(clean.send_resp.0 <= base + 400_000);
                    let err = (clean.recv_req.0 as i64 - (base + 60_000) as i64).abs();
                    assert!(err < 10_000, "B offset not resolved: {err}ns");
                }
            }
        }
        let est = s.skew_estimate(a, b).unwrap();
        assert!((est - skew as f64).abs() < 5_000.0, "edge estimate {est}");
        // A↔EXTERNAL edge shows no spurious skew.
        let est_a = s.skew_estimate(EXTERNAL, a).unwrap();
        assert!(est_a.abs() < 5_000.0, "phantom skew on clean edge: {est_a}");
    }

    #[test]
    fn late_records_dropped_beyond_horizon() {
        let mut s = Sanitizer::new(SanitizeConfig {
            late_horizon: Some(Nanos::from_millis(1)),
            ..SanitizeConfig::default()
        });
        assert!(s.sanitize(rec(1, 10_000)).is_some()); // watermark ≈ 10.11ms
        assert!(
            s.sanitize(rec(2, 500)).is_none(),
            "9.5ms late > 1ms horizon"
        );
        assert!(s.sanitize(rec(3, 9_800)).is_some(), "within horizon");
        assert_eq!(s.stats().late, 1);
    }

    #[test]
    fn stage_filters_between_channels() {
        let (out_tx, out_rx) = bounded(1024);
        let (tx, stage) = SanitizerStage::spawn(SanitizeConfig::default(), out_tx, 1024);
        for i in 0..10 {
            tx.send(rec(i, i * 500)).unwrap();
        }
        tx.send(rec(3, 1_500)).unwrap(); // duplicate
        let mut truncated = rec(100, 20_000);
        truncated.recv_resp = Nanos::ZERO;
        truncated.send_resp = Nanos::ZERO;
        tx.send(truncated).unwrap();
        drop(tx);
        let stats = stage.join();
        let forwarded: Vec<RpcRecord> = out_rx.try_iter().collect();
        assert_eq!(forwarded.len(), 10);
        assert_eq!(stats.received, 12);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.truncated, 1);
    }
}
