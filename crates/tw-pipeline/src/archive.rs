//! The archive sink stage (DESIGN.md §14): sits after the merge in the
//! online pipeline, converts each sealed window's reconstruction into
//! [`StoredTrace`]s, appends them to a durable [`TraceArchive`], and
//! re-emits the window unchanged — results consumers see the exact same
//! stream with or without archiving.
//!
//! Because the stage runs after the merge, it observes windows in global
//! window order regardless of shard count, so the archive's segmentation
//! is deterministic: 1, 2, and 8 shards produce byte-identical archive
//! directories.

use crate::online::{DegradationLevel, WindowResult};
use crate::pipeline::{DeadLetterPayload, Emitter, Stage, StageCtx};
use std::collections::HashMap;
use std::sync::Arc;
use tw_model::span::{RpcRecord, EXTERNAL};
use tw_store::{StoredSpan, StoredTrace, TraceArchive};

/// A window result is its own dead-letter provenance: if the archive
/// stage panics on one, the quarantine entry names the window.
impl DeadLetterPayload for WindowResult {
    fn dead_letter_window(&self) -> Option<u64> {
        Some(self.index)
    }
}

/// Convert one reconstructed window into stored traces: one trace per
/// root record (a record whose caller is the external client), its span
/// tree assembled from the window's mapping in pre-order with depths.
/// Shed (skipped) windows carried records *without* reconstructing them,
/// so they produce no traces — the window still advances the archive
/// watermark when observed.
pub fn stored_traces(result: &WindowResult) -> Vec<StoredTrace> {
    if result.degradation == DegradationLevel::Skip {
        return Vec::new();
    }
    let by_id: HashMap<u64, &RpcRecord> = result.records.iter().map(|r| (r.rpc.0, r)).collect();
    let degraded = result.degradation != DegradationLevel::Full;
    let mut traces = Vec::new();
    for record in &result.records {
        if record.caller != EXTERNAL {
            continue;
        }
        let tree = result.reconstruction.mapping.assemble(record.rpc);
        let spans: Vec<StoredSpan> = tree
            .nodes
            .iter()
            .filter_map(|(rpc, depth)| {
                by_id.get(&rpc.0).map(|r| StoredSpan {
                    depth: *depth as u32,
                    record: **r,
                })
            })
            .collect();
        let start = record.send_req.0;
        let end = record.recv_resp.0;
        traces.push(StoredTrace {
            window: result.index,
            root: record.rpc.0,
            start,
            end,
            latency_ns: end.saturating_sub(start),
            degraded,
            spans,
        });
    }
    traces
}

/// The sink stage: archive, then pass the window through untouched.
pub struct ArchiveStage {
    archive: Arc<TraceArchive>,
}

impl ArchiveStage {
    pub fn new(archive: Arc<TraceArchive>) -> Self {
        ArchiveStage { archive }
    }
}

impl Stage for ArchiveStage {
    type In = WindowResult;
    type Out = WindowResult;

    fn name(&self) -> &str {
        "archive"
    }

    fn process(&mut self, item: Self::In, _ctx: &StageCtx, out: &mut Emitter<Self::Out>) {
        self.archive
            .observe_window(item.index, stored_traces(&item));
        // Window results are never shed: the archive hop blocks under
        // pressure like the merge hop does.
        out.emit_pressure(item);
    }

    fn flush(&mut self, _ctx: &StageCtx, _out: &mut Emitter<Self::Out>) {
        // Seal the remainder so a clean shutdown archives every window
        // the pipeline emitted.
        self.archive.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tw_core::Reconstruction;
    use tw_model::ids::{Endpoint, OperationId, RpcId, ServiceId};
    use tw_model::time::Nanos;

    fn rec(rpc: u64, caller: ServiceId, callee: u32, t: [u64; 4]) -> RpcRecord {
        RpcRecord {
            rpc: RpcId(rpc),
            caller,
            caller_replica: 0,
            callee: Endpoint::new(ServiceId(callee), OperationId(0)),
            callee_replica: 0,
            send_req: Nanos(t[0]),
            recv_req: Nanos(t[1]),
            send_resp: Nanos(t[2]),
            recv_resp: Nanos(t[3]),
            caller_thread: None,
            callee_thread: None,
        }
    }

    fn window(records: Vec<RpcRecord>, degradation: DegradationLevel) -> WindowResult {
        let mut reconstruction = Reconstruction::default();
        // Root 1 called 2; 2 called 3.
        reconstruction.mapping.assign(RpcId(1), [RpcId(2)]);
        reconstruction.mapping.assign(RpcId(2), [RpcId(3)]);
        WindowResult {
            index: 5,
            end: Nanos(1_000),
            records,
            reconstruction,
            queue_depth: 0,
            latency: Duration::ZERO,
            warm_edges: 0,
            degradation,
            shed_records: 0,
        }
    }

    #[test]
    fn roots_become_traces_with_depths_and_latency() {
        let records = vec![
            rec(1, EXTERNAL, 10, [100, 110, 890, 900]),
            rec(2, ServiceId(10), 20, [200, 210, 690, 700]),
            rec(3, ServiceId(20), 30, [300, 310, 490, 500]),
        ];
        let traces = stored_traces(&window(records, DegradationLevel::Full));
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!((t.window, t.root), (5, 1));
        assert_eq!((t.start, t.end, t.latency_ns), (100, 900, 800));
        assert!(!t.degraded);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].depth, 0);
        let depth_of = |rpc: u64| {
            t.spans
                .iter()
                .find(|s| s.record.rpc.0 == rpc)
                .unwrap()
                .depth
        };
        assert_eq!(depth_of(2), 1);
        assert_eq!(depth_of(3), 2);
    }

    #[test]
    fn degraded_and_skipped_windows_are_marked_or_empty() {
        let records = vec![rec(1, EXTERNAL, 10, [100, 110, 890, 900])];
        let greedy = stored_traces(&window(records.clone(), DegradationLevel::Greedy));
        assert_eq!(greedy.len(), 1);
        assert!(greedy[0].degraded);
        let skipped = stored_traces(&window(records, DegradationLevel::Skip));
        assert!(skipped.is_empty(), "skipped windows archive nothing");
    }
}
