//! Deployment modes for TraceWeaver (paper §5.3).
//!
//! * [`store`] — **offline** mode: spans are collected and persisted; an
//!   operator later selects a time range and reconstructs on demand;
//! * [`online`] — **online** mode: spans stream into a running engine
//!   (over a crossbeam channel, as they would over the wire via
//!   `tw_capture::wire`) that reconstructs tumbling windows in real time;
//! * [`net`] — a TCP span transport: agents export wire frames to an
//!   ingestion server feeding the engine;
//! * [`sanitize`] — a defensive stage between ingestion and the engine:
//!   bounded dedup, non-causal rejection, clock-skew correction, and
//!   late-arrival accounting (DESIGN.md §9);
//! * [`pipeline`] — the staged-pipeline core: the [`Stage`] abstraction,
//!   bounded inter-stage queues with explicit backpressure (block or
//!   shed-with-counter), sharded fan-out with a deterministic merge, and
//!   the [`PipelineBuilder`] the online path composes on (DESIGN.md §11);
//! * [`sampling`] — **tail-based sampling** on reconstructed traces: once
//!   a window is mapped, a configured fraction of complete traces is kept
//!   and the rest dropped — the sampling style head-based tracing cannot
//!   provide without context propagation (§6.6 discusses why head-based
//!   sampling is unsupported).
//!
//! Every stage reports into a [`tw_telemetry::Registry`] (DESIGN.md §10):
//! pass one registry to the server/sanitizer/engine and serve it over
//! HTTP with [`MetricsServer`] for a Prometheus-scrapeable view of the
//! whole pipeline.

pub mod archive;
pub mod checkpoint;
pub mod net;
pub mod online;
pub mod pipeline;
pub mod sampling;
pub mod sanitize;
pub mod store;
pub mod supervise;

pub use archive::{stored_traces, ArchiveStage};
pub use checkpoint::{
    load_checkpoint, write_checkpoint, CheckpointConfig, CheckpointDoc, CheckpointError,
    CheckpointSources, Checkpointer, RecoveryMetrics,
};
pub use net::{
    export_records, export_records_with, fetch_deadletters, fetch_metrics, fetch_spans,
    fetch_traces, ExportRetry, IngestServer, IngestStats, MetricsServer, ServeHealth,
};
pub use online::{
    AdaptiveShed, DegradationLevel, OnlineConfig, OnlineEngine, ShedPolicy, WindowResult,
};
pub use pipeline::{
    Backpressure, DeadLetterPayload, Emitter, FanOut, Pipeline, PipelineBuilder, QueueCfg,
    Sequenced, ShardEmitters, ShardMsg, ShutdownReport, Stage, StageCtx,
};
pub use sampling::TailSampler;
pub use sanitize::{
    SanitizeConfig, SanitizeStage, SanitizeStats, Sanitizer, SanitizerSnapshot,
    SanitizerSnapshotSlot,
};
pub use store::{load_registry, save_registry, OfflineStore};
pub use supervise::{DeadLetter, DeadLetterQueue, RestartPolicy, StageFailure, Supervisor};
