//! Offline deployment mode: persist spans, reconstruct on demand.

use parking_lot::RwLock;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use tw_core::{Reconstruction, TraceWeaver};
use tw_model::span::RpcRecord;
use tw_model::time::Nanos;

/// A thread-safe append-only span store with time-range queries and
/// JSON-lines persistence.
#[derive(Debug, Default)]
pub struct OfflineStore {
    records: RwLock<Vec<RpcRecord>>,
}

impl OfflineStore {
    pub fn new() -> Self {
        OfflineStore::default()
    }

    /// Append a batch of records (any order; queries sort internally).
    pub fn ingest(&self, batch: &[RpcRecord]) {
        self.records.write().extend_from_slice(batch);
    }

    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// Records whose request was sent within `[from, to)`.
    pub fn query(&self, from: Nanos, to: Nanos) -> Vec<RpcRecord> {
        self.records
            .read()
            .iter()
            .filter(|r| r.send_req >= from && r.send_req < to)
            .copied()
            .collect()
    }

    /// Reconstruct traces for a time range on demand (the paper's offline
    /// workflow: "TraceWeaver can selectively run the algorithm on spans
    /// from that period").
    pub fn reconstruct_range(&self, tw: &TraceWeaver, from: Nanos, to: Nanos) -> Reconstruction {
        tw.reconstruct_records(&self.query(from, to))
    }

    /// Persist all records as JSON lines.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        for rec in self.records.read().iter() {
            serde_json::to_writer(&mut w, rec)?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }

    /// Load records from a JSON-lines file into a new store.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let reader = BufReader::new(file);
        let mut records = Vec::new();
        use std::io::BufRead;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: RpcRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            records.push(rec);
        }
        Ok(OfflineStore {
            records: RwLock::new(records),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_model::ids::{Endpoint, OperationId, RpcId, ServiceId};
    use tw_model::span::EXTERNAL;

    fn rec(rpc: u64, at_us: u64) -> RpcRecord {
        RpcRecord {
            rpc: RpcId(rpc),
            caller: EXTERNAL,
            caller_replica: 0,
            callee: Endpoint::new(ServiceId(0), OperationId(0)),
            callee_replica: 0,
            send_req: Nanos::from_micros(at_us),
            recv_req: Nanos::from_micros(at_us + 10),
            send_resp: Nanos::from_micros(at_us + 100),
            recv_resp: Nanos::from_micros(at_us + 110),
            caller_thread: None,
            callee_thread: None,
        }
    }

    #[test]
    fn ingest_and_query_range() {
        let store = OfflineStore::new();
        store.ingest(&[rec(0, 100), rec(1, 500), rec(2, 900)]);
        assert_eq!(store.len(), 3);
        let hits = store.query(Nanos::from_micros(200), Nanos::from_micros(800));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rpc, RpcId(1));
    }

    #[test]
    fn save_load_round_trip() {
        let store = OfflineStore::new();
        store.ingest(&[rec(0, 100), rec(1, 500)]);
        let dir = std::env::temp_dir().join("tw-pipeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        store.save(&path).unwrap();
        let loaded = OfflineStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.query(Nanos::ZERO, Nanos::MAX),
            store.query(Nanos::ZERO, Nanos::MAX)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store() {
        let store = OfflineStore::new();
        assert!(store.is_empty());
        assert!(store.query(Nanos::ZERO, Nanos::MAX).is_empty());
    }
}
