//! Offline deployment mode: persist spans, reconstruct on demand, and
//! learn / persist delay registries for warm-starting engines.

use crate::sanitize::{SanitizeConfig, SanitizeStats, Sanitizer};
use parking_lot::{Mutex, RwLock};
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use tw_core::{DelayRegistry, Reconstruction, TraceWeaver};
use tw_model::span::RpcRecord;
use tw_model::time::Nanos;
use tw_telemetry::Registry;

/// Store contents plus the sort flag guarding the binary-search index.
#[derive(Debug, Default)]
struct Inner {
    records: Vec<RpcRecord>,
    /// Whether `records` is currently sorted by `(send_req, rpc)`.
    /// Ingest appends unsorted and clears this; the first query after an
    /// ingest re-sorts once, so N ingests + M queries cost one sort, not
    /// M scans.
    sorted: bool,
}

/// A thread-safe append-only span store with time-range queries and
/// JSON-lines persistence.
///
/// Records are kept sorted by `(send_req, rpc)` lazily: ingestion is a
/// plain append, and the first query after an ingest sorts the backing
/// vector so every range query is a pair of binary searches over a
/// contiguous slice instead of a full scan.
///
/// Built via [`OfflineStore::with_sanitizer`], every ingested batch runs
/// through the same [`Sanitizer`] the online path uses (dedup, causality,
/// skew correction, late-arrival horizon) before landing in the store, so
/// offline reconstruction sees exactly the record stream a live engine
/// would — the paper's offline workflow with the PR-3 hygiene applied.
#[derive(Debug, Default)]
pub struct OfflineStore {
    inner: RwLock<Inner>,
    /// Sanitizers are stateful (dedup ring, skew EWMAs, watermark), so
    /// batches are serialized through a mutex; the store's read paths
    /// never touch it.
    sanitizer: Option<Mutex<Sanitizer>>,
}

impl OfflineStore {
    pub fn new() -> Self {
        OfflineStore::default()
    }

    /// A store whose ingests are sanitized, with drop/pass counters and
    /// per-service skew gauges registered in `registry` (the
    /// `tw_sanitize_*` series).
    pub fn with_sanitizer(cfg: SanitizeConfig, registry: &Registry) -> Self {
        OfflineStore {
            inner: RwLock::default(),
            sanitizer: Some(Mutex::new(Sanitizer::new_in(cfg, registry))),
        }
    }

    /// Append a batch of records (any order; queries sort internally).
    /// Stores built with [`with_sanitizer`](Self::with_sanitizer) keep
    /// only the records that survive sanitization.
    pub fn ingest(&self, batch: &[RpcRecord]) {
        if batch.is_empty() {
            return;
        }
        if let Some(sanitizer) = &self.sanitizer {
            let clean = sanitizer.lock().sanitize_batch(batch.iter().cloned());
            if clean.is_empty() {
                return;
            }
            let mut inner = self.inner.write();
            inner.records.extend(clean);
            inner.sorted = false;
            return;
        }
        let mut inner = self.inner.write();
        inner.records.extend_from_slice(batch);
        inner.sorted = false;
    }

    /// Cumulative sanitizer counters, or `None` for unsanitized stores.
    pub fn sanitize_stats(&self) -> Option<SanitizeStats> {
        self.sanitizer.as_ref().map(|s| s.lock().stats())
    }

    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().records.is_empty()
    }

    /// Sort the backing vector if an ingest dirtied it since the last
    /// query. Double-checked under the write lock: concurrent queries may
    /// race to this point and only one should pay for the sort.
    fn ensure_sorted(&self) {
        if self.inner.read().sorted {
            return;
        }
        let mut inner = self.inner.write();
        if !inner.sorted {
            inner.records.sort_unstable_by_key(|r| (r.send_req, r.rpc));
            inner.sorted = true;
        }
    }

    /// Records whose request was sent within `[from, to)`, in
    /// `(send_req, rpc)` order.
    pub fn query(&self, from: Nanos, to: Nanos) -> Vec<RpcRecord> {
        self.ensure_sorted();
        let inner = self.inner.read();
        let recs = &inner.records;
        let lo = recs.partition_point(|r| r.send_req < from);
        let hi = recs.partition_point(|r| r.send_req < to);
        recs[lo..hi].to_vec()
    }

    /// Reconstruct traces for a time range on demand (the paper's offline
    /// workflow: "TraceWeaver can selectively run the algorithm on spans
    /// from that period").
    pub fn reconstruct_range(&self, tw: &TraceWeaver, from: Nanos, to: Nanos) -> Reconstruction {
        tw.reconstruct_records(&self.query(from, to))
    }

    /// Replay the whole store through warm-started windows of length
    /// `window` and return the accumulated delay registry: window *k+1*
    /// starts from window *k*'s posterior, exactly like the online warm
    /// path. Feed the result to `OnlineConfig::initial_registry` or a
    /// warm `reconstruct_records_with_registry` call. A zero `window`
    /// processes the store as a single window.
    pub fn learn_delays(&self, tw: &TraceWeaver, window: Nanos) -> DelayRegistry {
        let mut registry = DelayRegistry::new();
        let all = self.query(Nanos::ZERO, Nanos::MAX);
        let Some(first) = all.first() else {
            return registry;
        };
        if window == Nanos::ZERO {
            return tw.reconstruct_records_with_registry(&all, &registry).1;
        }
        let mut start = first.send_req;
        let mut lo = 0usize;
        while lo < all.len() {
            let end = start + window;
            let hi = lo + all[lo..].partition_point(|r| r.send_req < end);
            if hi > lo {
                registry = tw
                    .reconstruct_records_with_registry(&all[lo..hi], &registry)
                    .1;
            }
            lo = hi;
            start = end;
        }
        registry
    }

    /// Persist all records as JSON lines, in `(send_req, rpc)` order.
    /// Atomic: written to a temp sibling, fsynced, then renamed over
    /// `path`, so a crash mid-save never truncates an existing store.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.ensure_sorted();
        let tmp = tmp_sibling(path);
        let file = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        for rec in self.inner.read().records.iter() {
            serde_json::to_writer(&mut w, rec)?;
            w.write_all(b"\n")?;
        }
        w.flush()?;
        w.into_inner()
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .sync_all()?;
        std::fs::rename(&tmp, path)
    }

    /// Load records from a JSON-lines file into a new store.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let reader = BufReader::new(file);
        let mut records = Vec::new();
        use std::io::BufRead;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: RpcRecord = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            records.push(rec);
        }
        Ok(OfflineStore {
            inner: RwLock::new(Inner {
                records,
                sorted: false,
            }),
            sanitizer: None,
        })
    }
}

/// Temp sibling for atomic replacement: same directory (rename must not
/// cross filesystems), unambiguous suffix.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Persist a delay registry as pretty-printed JSON (the `twctl
/// learn-delays` output format; see DESIGN.md §8). Atomic via
/// write-temp→fsync→rename, like [`OfflineStore::save`].
pub fn save_registry(path: &Path, registry: &DelayRegistry) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(registry)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let tmp = tmp_sibling(path);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}

/// Load a delay registry saved by [`save_registry`].
pub fn load_registry(path: &Path) -> std::io::Result<DelayRegistry> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_model::ids::{Endpoint, OperationId, RpcId, ServiceId};
    use tw_model::span::EXTERNAL;

    fn rec(rpc: u64, at_us: u64) -> RpcRecord {
        RpcRecord {
            rpc: RpcId(rpc),
            caller: EXTERNAL,
            caller_replica: 0,
            callee: Endpoint::new(ServiceId(0), OperationId(0)),
            callee_replica: 0,
            send_req: Nanos::from_micros(at_us),
            recv_req: Nanos::from_micros(at_us + 10),
            send_resp: Nanos::from_micros(at_us + 100),
            recv_resp: Nanos::from_micros(at_us + 110),
            caller_thread: None,
            callee_thread: None,
        }
    }

    #[test]
    fn ingest_and_query_range() {
        let store = OfflineStore::new();
        store.ingest(&[rec(0, 100), rec(1, 500), rec(2, 900)]);
        assert_eq!(store.len(), 3);
        let hits = store.query(Nanos::from_micros(200), Nanos::from_micros(800));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rpc, RpcId(1));
    }

    /// Queries between ingests must keep seeing a consistent sorted view:
    /// every ingest dirties the sort flag and the next query re-sorts.
    #[test]
    fn interleaved_ingest_and_query() {
        let store = OfflineStore::new();
        // Out-of-order first batch.
        store.ingest(&[rec(2, 900), rec(0, 100)]);
        let hits = store.query(Nanos::ZERO, Nanos::MAX);
        assert_eq!(
            hits.iter().map(|r| r.rpc).collect::<Vec<_>>(),
            vec![RpcId(0), RpcId(2)],
            "query returns (send_req, rpc) order"
        );
        // Second ingest lands *before* existing records in time.
        store.ingest(&[rec(1, 500), rec(3, 50)]);
        let hits = store.query(Nanos::from_micros(60), Nanos::from_micros(600));
        assert_eq!(
            hits.iter().map(|r| r.rpc).collect::<Vec<_>>(),
            vec![RpcId(0), RpcId(1)],
            "records from both batches merge into one sorted view"
        );
        // Boundary semantics: [from, to) half-open on send_req.
        let hits = store.query(Nanos::from_micros(50), Nanos::from_micros(100));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rpc, RpcId(3));
        // Ties on send_req break by rpc id.
        store.ingest(&[rec(10, 500)]);
        let hits = store.query(Nanos::from_micros(500), Nanos::from_micros(501));
        assert_eq!(
            hits.iter().map(|r| r.rpc).collect::<Vec<_>>(),
            vec![RpcId(1), RpcId(10)]
        );
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn save_load_round_trip() {
        let store = OfflineStore::new();
        store.ingest(&[rec(0, 100), rec(1, 500)]);
        let dir = std::env::temp_dir().join("tw-pipeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        store.save(&path).unwrap();
        let loaded = OfflineStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.query(Nanos::ZERO, Nanos::MAX),
            store.query(Nanos::ZERO, Nanos::MAX)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store() {
        let store = OfflineStore::new();
        assert!(store.is_empty());
        assert!(store.query(Nanos::ZERO, Nanos::MAX).is_empty());
        assert!(store.sanitize_stats().is_none());
    }

    /// A sanitized store drops duplicates and non-causal records on
    /// ingest and accounts for them in the shared registry.
    #[test]
    fn sanitized_ingest_drops_and_counts() {
        let registry = tw_telemetry::Registry::new();
        let store = OfflineStore::with_sanitizer(SanitizeConfig::default(), &registry);

        let good = rec(0, 100);
        let mut non_causal = rec(1, 500);
        // Caller clock runs backwards: response received before request sent.
        non_causal.recv_resp = Nanos::from_micros(400);
        store.ingest(&[good, good, non_causal]);

        assert_eq!(store.len(), 1, "duplicate and non-causal records dropped");
        let stats = store.sanitize_stats().expect("sanitized store has stats");
        assert_eq!(stats.received, 3);
        assert_eq!(stats.passed, 1);
        assert_eq!(stats.duplicates, 1);
        let rendered = registry.render();
        assert!(rendered.contains("tw_sanitize_received_total 3"));
        assert!(rendered.contains("tw_sanitize_dropped_total{reason=\"duplicate\"} 1"));
    }

    #[test]
    fn registry_file_round_trip() {
        use std::collections::HashMap;
        use tw_core::delays::EdgeKey;
        use tw_core::Params;
        use tw_model::span::ProcessKey;

        let mut registry = DelayRegistry::new();
        let process = ProcessKey::new(ServiceId(1), 0);
        let edge = EdgeKey::Final {
            served: Endpoint::new(ServiceId(1), OperationId(0)),
        };
        let mut gaps = HashMap::new();
        gaps.insert(edge, vec![100.0, 120.0, 95.0, 130.0, 110.0]);
        registry.absorb(process, &gaps, &Params::default());
        registry.finish_round();

        let dir = std::env::temp_dir().join("tw-pipeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("registry.json");
        save_registry(&path, &registry).unwrap();
        let loaded = load_registry(&path).unwrap();
        assert_eq!(loaded.rounds(), registry.rounds());
        assert_eq!(loaded.len(), registry.len());
        let model = loaded.model_for(&process).expect("process survives");
        let original = registry.model_for(&process).unwrap();
        let x = 105.0;
        assert!((model.log_pdf(&edge, x) - original.log_pdf(&edge, x)).abs() < 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn learn_delays_accumulates_windows() {
        use tw_core::Params;
        use tw_sim::apps::two_service_chain;
        use tw_sim::{Simulator, Workload};

        let app = two_service_chain(55);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(1)));
        let store = OfflineStore::new();
        store.ingest(&out.records);

        let tw = TraceWeaver::new(call_graph, Params::default());
        let registry = store.learn_delays(&tw, Nanos::from_millis(250));
        assert!(!registry.is_empty(), "learned registry has edges");
        assert!(registry.rounds() >= 2, "several windows absorbed");
        // Single-window replay also works and sees every record.
        let one_shot = store.learn_delays(&tw, Nanos::ZERO);
        assert!(!one_shot.is_empty());
        assert_eq!(one_shot.rounds(), 1);
    }
}
