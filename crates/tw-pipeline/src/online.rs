//! Online deployment mode (paper §5.3): a running engine ingests spans in
//! real time and reconstructs traces window by window.
//!
//! Spans arrive on a crossbeam channel (in production they'd arrive as
//! `tw_capture::wire` frames over TCP; the channel models the same
//! stream). The engine buffers records and, whenever the *watermark* (the
//! latest response timestamp seen) passes the current window's end plus a
//! grace period, reconstructs every record that completed inside the
//! window. The grace period plays the paper's role of "the window needs to
//! be chosen based on the known response latency distribution of the app":
//! records of one trace always land in the same window because a trace's
//! root response is its last event.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread::JoinHandle;
use tw_core::{Reconstruction, TraceWeaver};
use tw_model::span::RpcRecord;
use tw_model::time::Nanos;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Window length (paper suggests 1–5s of spans per optimization).
    pub window: Nanos,
    /// Extra wait beyond the window end before processing, covering the
    /// app's maximum response latency.
    pub grace: Nanos,
    /// Channel capacity for ingestion back-pressure.
    pub channel_capacity: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: Nanos::from_secs(1),
            grace: Nanos::from_millis(200),
            channel_capacity: 65_536,
        }
    }
}

/// One reconstructed window.
#[derive(Debug)]
pub struct WindowResult {
    /// Window index (0-based).
    pub index: u64,
    /// Window end (records with `recv_resp <= end` were processed).
    pub end: Nanos,
    /// Records processed in this window.
    pub records: Vec<RpcRecord>,
    pub reconstruction: Reconstruction,
}

impl WindowResult {
    /// Fraction of this window's incoming spans that received a mapping —
    /// a cheap live health signal for the deployment.
    pub fn mapped_fraction(&self) -> f64 {
        let (mapped, total) = self
            .reconstruction
            .reports
            .iter()
            .fold((0usize, 0usize), |(m, t), (_, r)| {
                (m + r.mapped_spans, t + r.total_spans)
            });
        if total == 0 {
            1.0
        } else {
            mapped as f64 / total as f64
        }
    }
}

/// The online engine: a worker thread owning a [`TraceWeaver`] instance.
///
/// Dropping / closing the ingest sender flushes all remaining records as a
/// final window and shuts the worker down.
pub struct OnlineEngine {
    ingest: Option<Sender<RpcRecord>>,
    results: Receiver<WindowResult>,
    worker: Option<JoinHandle<()>>,
}

impl OnlineEngine {
    pub fn start(tw: TraceWeaver, config: OnlineConfig) -> Self {
        let (tx, rx) = bounded::<RpcRecord>(config.channel_capacity);
        let (res_tx, res_rx) = bounded::<WindowResult>(1024);
        let worker = std::thread::spawn(move || {
            run_worker(tw, config, rx, res_tx);
        });
        OnlineEngine {
            ingest: Some(tx),
            results: res_rx,
            worker: Some(worker),
        }
    }

    /// Sender half for span ingestion (clone freely across capture
    /// threads).
    pub fn ingest_handle(&self) -> Sender<RpcRecord> {
        self.ingest.as_ref().expect("engine running").clone()
    }

    /// Receiver of reconstructed windows.
    pub fn results(&self) -> &Receiver<WindowResult> {
        &self.results
    }

    /// Close ingestion, flush, and wait for the worker. Returns any
    /// remaining window results.
    pub fn shutdown(mut self) -> Vec<WindowResult> {
        self.ingest.take(); // close the channel
        if let Some(h) = self.worker.take() {
            h.join().expect("worker panicked");
        }
        self.results.try_iter().collect()
    }
}

impl Drop for OnlineEngine {
    fn drop(&mut self) {
        self.ingest.take();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

fn run_worker(
    tw: TraceWeaver,
    config: OnlineConfig,
    rx: Receiver<RpcRecord>,
    out: Sender<WindowResult>,
) {
    let mut buffer: Vec<RpcRecord> = Vec::new();
    let mut watermark = Nanos::ZERO;
    let mut window_index: u64 = 0;
    let mut window_end = config.window;

    let flush = |index: u64,
                 end: Nanos,
                 buffer: &mut Vec<RpcRecord>,
                 out: &Sender<WindowResult>,
                 tw: &TraceWeaver,
                 everything: bool| {
        let (ready, rest): (Vec<_>, Vec<_>) = buffer
            .drain(..)
            .partition(|r| everything || r.recv_resp <= end);
        *buffer = rest;
        if ready.is_empty() {
            return;
        }
        let reconstruction = tw.reconstruct_records(&ready);
        // Receiver may have been dropped; reconstruction results are then
        // discarded, which is fine for shutdown paths.
        let _ = out.send(WindowResult {
            index,
            end,
            records: ready,
            reconstruction,
        });
    };

    for rec in rx.iter() {
        watermark = watermark.max(rec.recv_resp);
        buffer.push(rec);
        while watermark >= window_end + config.grace {
            flush(window_index, window_end, &mut buffer, &out, &tw, false);
            window_index += 1;
            window_end += config.window;
        }
    }
    // Channel closed: flush whatever is left as the final window.
    flush(window_index, watermark, &mut buffer, &out, &tw, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_core::Params;
    use tw_model::metrics::end_to_end_accuracy_all_roots;
    use tw_sim::apps::two_service_chain;
    use tw_sim::{Simulator, Workload};

    #[test]
    fn online_matches_offline_accuracy() {
        let app = two_service_chain(50);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 500.0, Nanos::from_secs(3)));

        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(500),
                grace: Nanos::from_millis(100),
                channel_capacity: 1024,
            },
        );
        let ingest = engine.ingest_handle();
        // Stream records in time order, as a capture agent would.
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);

        let mut windows = Vec::new();
        // Drain live results then the shutdown flush.
        let engine_results = engine.results().clone();
        windows.extend(engine.shutdown());
        windows.extend(engine_results.try_iter());

        assert!(windows.len() >= 4, "expected several windows, got {}", windows.len());
        // Merge all window mappings and compare against truth.
        let mut merged = tw_model::Mapping::new();
        for w in &windows {
            merged.merge(w.reconstruction.mapping.clone());
        }
        let acc = end_to_end_accuracy_all_roots(&merged, &out.truth);
        assert!(acc.ratio() > 0.85, "online accuracy {}", acc.ratio());
        // Every record was processed exactly once.
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
        // Health signal available per window.
        for w in &windows {
            let f = w.mapped_fraction();
            assert!((0.0..=1.0).contains(&f));
            assert!(f > 0.8, "window {} mapped only {f}", w.index);
        }
    }

    #[test]
    fn shutdown_flushes_partial_window() {
        let app = two_service_chain(51);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 100.0, Nanos::from_millis(100)));

        let tw = TraceWeaver::new(call_graph, Params::default());
        // Window far longer than the run: nothing flushes until shutdown.
        let engine = OnlineEngine::start(tw, OnlineConfig::default());
        let ingest = engine.ingest_handle();
        for r in &out.records {
            ingest.send(*r).unwrap();
        }
        drop(ingest);
        let windows = engine.shutdown();
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
    }

    #[test]
    fn windows_are_ordered() {
        let app = two_service_chain(52);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 300.0, Nanos::from_secs(2)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                channel_capacity: 1024,
            },
        );
        let ingest = engine.ingest_handle();
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);
        let results = engine.results().clone();
        let mut windows: Vec<WindowResult> = engine.shutdown();
        windows.extend(results.try_iter());
        windows.sort_by_key(|w| w.index);
        for pair in windows.windows(2) {
            assert!(pair[0].end <= pair[1].end);
        }
    }
}
