//! Online deployment mode (paper §5.3): a running engine ingests spans in
//! real time and reconstructs traces window by window.
//!
//! Spans arrive on a crossbeam channel (in production they'd arrive as
//! `tw_capture::wire` frames over TCP; the channel models the same
//! stream). The engine buffers records and, whenever the *watermark* (the
//! latest response timestamp seen) passes the current window's end plus a
//! grace period, reconstructs every record that completed inside the
//! window. The grace period plays the paper's role of "the window needs to
//! be chosen based on the known response latency distribution of the app":
//! records of one trace always land in the same window because a trace's
//! root response is its last event.
//!
//! The engine is a three-stage pipeline so window *k+1* ingests and
//! reconstructs while window *k* finalizes:
//!
//! ```text
//! ingest ─▶ windower ─▶ work queue ─▶ workers (×threads) ─▶ collector ─▶ results
//! ```
//!
//! The windower cuts windows at the watermark and enqueues them; each
//! worker reconstructs whole windows (windows are independent, like
//! per-service tasks within one); the collector reorders completed
//! windows back into window order before emitting, so the result stream
//! is identical for every `threads` value — with `threads = 1` the single
//! worker processes windows in order and the collector passes them
//! straight through.
//!
//! **Warm-start mode** ([`OnlineConfig::warm_start`]) threads a
//! [`DelayRegistry`] through the window stream: window *k*'s posterior is
//! published — in window order — before window *k+1* is reconstructed, so
//! every window after the first skips the seed bootstrap and starts EM
//! from accumulated cross-window evidence. Windows gain a sequential
//! model dependency in this mode, so the warm path runs one window at a
//! time (the registry chain *is* the order); use [`tw_core::Params::threads`]
//! for intra-window parallelism instead of `OnlineConfig::threads`. The
//! emitted stream stays byte-identical for every thread count.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Duration;
use tw_core::{DelayRegistry, Reconstruction, TraceWeaver};
use tw_model::span::RpcRecord;
use tw_model::time::Nanos;
use tw_telemetry::{Buckets, Counter, Gauge, Histogram, Registry};

/// How much of the reconstruction pipeline a window ran through — the
/// load-shedding ladder of DESIGN.md §9, ordered lightest to heaviest
/// degradation. Levels are strictly ordered: a deeper queue never picks a
/// lighter level than a shallower one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Normal operation: full batch size, exact joint optimization.
    #[default]
    Full,
    /// Batch size halved: smaller MIS instances, bounded solve cost.
    ShrinkBatch,
    /// Joint optimization disabled: greedy per-span assignment only.
    Greedy,
    /// Window not reconstructed at all; its records are carried through
    /// with explicit accounting ([`WindowResult::shed_records`]).
    Skip,
}

/// When to shed load, keyed on work-queue depth (windows waiting when a
/// worker picks up a job). Thresholds default to `usize::MAX` — **never**
/// — because queue depth is timing-dependent: enabling any threshold
/// forfeits the byte-identical-across-thread-counts guarantee. `forced`
/// pins every window to one level regardless of queue depth, which is
/// both the deterministic escape hatch for tests/benchmarks and a manual
/// operator override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Queue depth at which batch size is halved.
    pub shrink_batch_at: usize,
    /// Queue depth at which joint optimization is dropped.
    pub greedy_at: usize,
    /// Queue depth at which whole windows are skipped.
    pub skip_at: usize,
    /// Pin every window to this level (ignores queue depth entirely).
    pub forced: Option<DegradationLevel>,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            shrink_batch_at: usize::MAX,
            greedy_at: usize::MAX,
            skip_at: usize::MAX,
            forced: None,
        }
    }
}

impl ShedPolicy {
    /// The ladder rung for a window picked up at `queue_depth`. The
    /// heaviest threshold reached wins, so thresholds need not be ordered
    /// (though `shrink ≤ greedy ≤ skip` is the sensible configuration).
    pub fn level_for(&self, queue_depth: usize) -> DegradationLevel {
        if let Some(level) = self.forced {
            return level;
        }
        if queue_depth >= self.skip_at {
            DegradationLevel::Skip
        } else if queue_depth >= self.greedy_at {
            DegradationLevel::Greedy
        } else if queue_depth >= self.shrink_batch_at {
            DegradationLevel::ShrinkBatch
        } else {
            DegradationLevel::Full
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Window length (paper suggests 1–5s of spans per optimization).
    pub window: Nanos,
    /// Extra wait beyond the window end before processing, covering the
    /// app's maximum response latency.
    pub grace: Nanos,
    /// Channel capacity for ingestion back-pressure.
    pub channel_capacity: usize,
    /// Reconstruction workers: how many windows reconstruct concurrently
    /// (clamped to at least 1). Results are always emitted in window
    /// order, identical for every value; `1` keeps today's sequential
    /// behavior with the windower still overlapping ingestion. Ignored in
    /// warm-start mode (the registry chain serializes windows).
    pub threads: usize,
    /// Carry a [`DelayRegistry`] across windows: each window warm-starts
    /// from the posterior published by the previous window, decoupling
    /// estimation quality from window size (§5.3's window-sizing
    /// tension).
    pub warm_start: bool,
    /// Starting registry for warm mode — e.g. loaded from a previous
    /// run's posterior or `twctl learn-delays` output. `None` starts
    /// empty (the first window seeds cold and publishes the first
    /// posterior).
    pub initial_registry: Option<DelayRegistry>,
    /// Back-pressure load shedding (DESIGN.md §9). Disabled by default to
    /// preserve determinism across thread counts.
    pub shed: ShedPolicy,
    /// Registry for the engine's `tw_engine_*` series (window latency and
    /// queue-depth histograms, per-rung window counts, shed-ladder
    /// transitions). Defaults to a private registry; share one across the
    /// server/sanitizer/engine (and a `MetricsServer`) to scrape the whole
    /// pipeline. Telemetry never feeds back into reconstruction, so
    /// results stay byte-identical with or without observers.
    pub telemetry: Registry,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: Nanos::from_secs(1),
            grace: Nanos::from_millis(200),
            channel_capacity: 65_536,
            threads: 1,
            warm_start: false,
            initial_registry: None,
            shed: ShedPolicy::default(),
            telemetry: Registry::new(),
        }
    }
}

/// Registry-backed engine instrumentation, cloned into every worker. The
/// previous per-window latency/queue-depth fields on [`WindowResult`]
/// remain as per-window snapshots; these series are their cumulative view.
#[derive(Debug, Clone)]
struct EngineMetrics {
    windows_full: Counter,
    windows_shrink: Counter,
    windows_greedy: Counter,
    windows_skip: Counter,
    /// Per-worker ladder movements, labeled by the rung moved to.
    transitions: [Counter; 4],
    latency: Histogram,
    pickup_queue_depth: Histogram,
    queue_depth: Gauge,
    records: Counter,
    shed_records: Counter,
    warm_edges: Gauge,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        let windows = |level: &str| {
            registry.counter_with(
                "tw_engine_windows_total",
                "Windows reconstructed, by shed-ladder rung (DESIGN.md §9).",
                &[("shed_level", level)],
            )
        };
        let transition = |level: &str| {
            registry.counter_with(
                "tw_engine_shed_transitions_total",
                "Shed-ladder rung changes between consecutive windows of one worker.",
                &[("shed_level", level)],
            )
        };
        EngineMetrics {
            windows_full: windows("full"),
            windows_shrink: windows("shrink_batch"),
            windows_greedy: windows("greedy"),
            windows_skip: windows("skip"),
            transitions: [
                transition("full"),
                transition("shrink_batch"),
                transition("greedy"),
                transition("skip"),
            ],
            latency: registry.histogram(
                "tw_engine_window_latency_seconds",
                "Wall-clock reconstruction time per window.",
                Buckets::exponential(1e-4, 4.0, 12),
            ),
            pickup_queue_depth: registry.histogram(
                "tw_engine_pickup_queue_depth",
                "Windows waiting in the work queue when a worker picked one up.",
                Buckets::fixed(&[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
            ),
            queue_depth: registry.gauge(
                "tw_engine_queue_depth",
                "Work-queue depth at the most recent window pickup.",
            ),
            records: registry.counter(
                "tw_engine_records_total",
                "Records processed through windows (reconstructed or shed).",
            ),
            shed_records: registry.counter(
                "tw_engine_shed_records_total",
                "Records carried through unreconstructed because their window was skipped.",
            ),
            warm_edges: registry.gauge(
                "tw_engine_warm_edges",
                "Delay-registry edges the most recent warm window started from.",
            ),
        }
    }

    fn window_counter(&self, level: DegradationLevel) -> &Counter {
        match level {
            DegradationLevel::Full => &self.windows_full,
            DegradationLevel::ShrinkBatch => &self.windows_shrink,
            DegradationLevel::Greedy => &self.windows_greedy,
            DegradationLevel::Skip => &self.windows_skip,
        }
    }

    /// Record one finished window. `last_level` is the worker-local
    /// previous rung, used to count ladder transitions.
    fn observe_window(&self, result: &WindowResult, last_level: &mut Option<DegradationLevel>) {
        self.window_counter(result.degradation).inc();
        if *last_level != Some(result.degradation) {
            if last_level.is_some() {
                self.transitions[result.degradation as usize].inc();
            }
            *last_level = Some(result.degradation);
        }
        self.latency.observe(result.latency.as_secs_f64());
        self.pickup_queue_depth.observe(result.queue_depth as f64);
        self.queue_depth.set(result.queue_depth as f64);
        self.records.add(result.records.len() as u64);
        self.shed_records.add(result.shed_records as u64);
        if result.warm_edges > 0 {
            self.warm_edges.set(result.warm_edges as f64);
        }
    }
}

/// One reconstructed window.
#[derive(Debug)]
pub struct WindowResult {
    /// Window index (0-based).
    pub index: u64,
    /// Window end (records with `recv_resp <= end` were processed).
    pub end: Nanos,
    /// Records processed in this window.
    pub records: Vec<RpcRecord>,
    pub reconstruction: Reconstruction,
    /// Windows still waiting in the work queue when this one was picked
    /// up — a live back-pressure signal (persistently > 0 means
    /// reconstruction can't keep up with ingest at this thread count).
    pub queue_depth: usize,
    /// Wall-clock time the reconstruction of this window took.
    pub latency: Duration,
    /// Delay-registry edges this window warm-started from (0 = cold
    /// start: no prior, or warm mode disabled).
    pub warm_edges: usize,
    /// Ladder rung this window ran at (DESIGN.md §9). Anything but
    /// [`DegradationLevel::Full`] means the engine was shedding load.
    pub degradation: DegradationLevel,
    /// Records carried through *without* reconstruction because the
    /// window was shed at [`DegradationLevel::Skip`] (0 otherwise). The
    /// sum of `records.len()` across windows still equals the ingested
    /// record count — skipping never silently drops data.
    pub shed_records: usize,
}

impl WindowResult {
    /// Fraction of this window's incoming spans that received a mapping —
    /// a cheap live health signal for the deployment. A shed (skipped)
    /// window mapped nothing, so it reports 0.
    pub fn mapped_fraction(&self) -> f64 {
        if self.shed_records > 0 {
            return 0.0;
        }
        let (mapped, total) = self
            .reconstruction
            .reports
            .iter()
            .fold((0usize, 0usize), |(m, t), (_, r)| {
                (m + r.mapped_spans, t + r.total_spans)
            });
        if total == 0 {
            1.0
        } else {
            mapped as f64 / total as f64
        }
    }
}

/// A cut window waiting for reconstruction.
struct WindowJob {
    /// Dense sequence number for in-order emission (window indices can
    /// have gaps: empty windows are never enqueued).
    seq: u64,
    index: u64,
    end: Nanos,
    records: Vec<RpcRecord>,
}

/// The online engine: a windower thread cutting windows, a pool of
/// reconstruction workers, and a collector restoring window order.
///
/// Dropping / closing the ingest sender flushes all remaining records as a
/// final window and shuts the pipeline down stage by stage.
pub struct OnlineEngine {
    ingest: Option<Sender<RpcRecord>>,
    results: Receiver<WindowResult>,
    threads: Option<Vec<JoinHandle<()>>>,
    registry: Option<Receiver<DelayRegistry>>,
}

impl OnlineEngine {
    pub fn start(tw: TraceWeaver, mut config: OnlineConfig) -> Self {
        let warm = config.warm_start;
        let shed = config.shed;
        let metrics = EngineMetrics::new(&config.telemetry);
        // Warm windows chain through the registry (k+1 starts from k's
        // posterior), so the warm path is a single ordered worker.
        let workers = if warm { 1 } else { config.threads.max(1) };
        let initial_registry = config.initial_registry.take().unwrap_or_default();
        let (tx, rx) = bounded::<RpcRecord>(config.channel_capacity);
        // Work queue sized to the pool: back-pressure propagates to the
        // windower (and from there to ingest) when workers fall behind.
        let (work_tx, work_rx) = bounded::<WindowJob>(workers * 2);
        let (done_tx, done_rx) = bounded::<(u64, WindowResult)>(1024);
        let (res_tx, res_rx) = bounded::<WindowResult>(1024);

        let mut threads = Vec::with_capacity(workers + 2);
        threads.push(std::thread::spawn(move || {
            run_windower(config, rx, work_tx);
        }));
        let registry = if warm {
            let (reg_tx, reg_rx) = bounded::<DelayRegistry>(1);
            threads.push(std::thread::spawn(move || {
                run_warm_worker(
                    tw,
                    shed,
                    metrics,
                    work_rx,
                    done_tx,
                    initial_registry,
                    reg_tx,
                );
            }));
            Some(reg_rx)
        } else {
            for _ in 0..workers {
                let tw = tw.clone();
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let metrics = metrics.clone();
                threads.push(std::thread::spawn(move || {
                    run_reconstruction_worker(tw, shed, metrics, work_rx, done_tx);
                }));
            }
            drop(done_tx); // collector exits when the last worker drops its clone
            None
        };
        threads.push(std::thread::spawn(move || {
            run_collector(done_rx, res_tx);
        }));

        OnlineEngine {
            ingest: Some(tx),
            results: res_rx,
            threads: Some(threads),
            registry,
        }
    }

    /// Sender half for span ingestion (clone freely across capture
    /// threads).
    pub fn ingest_handle(&self) -> Sender<RpcRecord> {
        self.ingest.as_ref().expect("engine running").clone()
    }

    /// Receiver of reconstructed windows, emitted in window order.
    pub fn results(&self) -> &Receiver<WindowResult> {
        &self.results
    }

    /// Close ingestion, flush, and wait for the pipeline to drain.
    /// Returns any remaining window results.
    pub fn shutdown(self) -> Vec<WindowResult> {
        self.shutdown_with_registry().0
    }

    /// Like [`shutdown`](Self::shutdown), but also returns the final
    /// delay registry — the last window's posterior — when the engine ran
    /// in warm-start mode (`None` in cold mode). Persist it (see
    /// `save_registry`) to warm-start the next engine across restarts.
    pub fn shutdown_with_registry(mut self) -> (Vec<WindowResult>, Option<DelayRegistry>) {
        self.ingest.take(); // close the channel
        if let Some(handles) = self.threads.take() {
            for h in handles {
                h.join().expect("pipeline thread panicked");
            }
        }
        let registry = self.registry.take().and_then(|rx| rx.try_recv().ok());
        (self.results.try_iter().collect(), registry)
    }
}

impl Drop for OnlineEngine {
    fn drop(&mut self) {
        self.ingest.take();
        if let Some(handles) = self.threads.take() {
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

/// Stage 1: buffer records, cut windows at the watermark, enqueue
/// non-empty windows for reconstruction.
fn run_windower(config: OnlineConfig, rx: Receiver<RpcRecord>, out: Sender<WindowJob>) {
    let mut buffer: Vec<RpcRecord> = Vec::new();
    let mut watermark = Nanos::ZERO;
    let mut window_index: u64 = 0;
    let mut window_end = config.window;
    let mut seq: u64 = 0;

    let flush = |index: u64,
                 end: Nanos,
                 buffer: &mut Vec<RpcRecord>,
                 seq: &mut u64,
                 out: &Sender<WindowJob>,
                 everything: bool| {
        let (ready, rest): (Vec<_>, Vec<_>) = buffer
            .drain(..)
            .partition(|r| everything || r.recv_resp <= end);
        *buffer = rest;
        if ready.is_empty() {
            return;
        }
        // Downstream may have shut down; dropping the window is fine on
        // shutdown paths.
        let _ = out.send(WindowJob {
            seq: *seq,
            index,
            end,
            records: ready,
        });
        *seq += 1;
    };

    for rec in rx.iter() {
        watermark = watermark.max(rec.recv_resp);
        buffer.push(rec);
        while watermark >= window_end + config.grace {
            flush(window_index, window_end, &mut buffer, &mut seq, &out, false);
            window_index += 1;
            window_end += config.window;
        }
    }
    // Channel closed: flush whatever is left as the final window.
    flush(window_index, watermark, &mut buffer, &mut seq, &out, true);
}

/// The configured engine plus its pre-built degraded variants, one per
/// shedding rung: halving `batch_size` and dropping joint optimization
/// are `Params` changes, so each rung is just the same call graph under
/// different parameters, built once per worker instead of per window.
struct LadderedWeaver {
    full: TraceWeaver,
    shrink: TraceWeaver,
    greedy: TraceWeaver,
}

impl LadderedWeaver {
    fn new(full: TraceWeaver) -> Self {
        let mut shrunk = *full.params();
        shrunk.batch_size = (shrunk.batch_size / 2).max(1);
        let shrink = TraceWeaver::new(full.call_graph().clone(), shrunk);
        let greedy = TraceWeaver::new(
            full.call_graph().clone(),
            full.params().ablate_joint_optimization(),
        );
        LadderedWeaver {
            full,
            shrink,
            greedy,
        }
    }

    /// Engine to reconstruct with at `level`; `None` means skip the
    /// window entirely.
    fn for_level(&self, level: DegradationLevel) -> Option<&TraceWeaver> {
        match level {
            DegradationLevel::Full => Some(&self.full),
            DegradationLevel::ShrinkBatch => Some(&self.shrink),
            DegradationLevel::Greedy => Some(&self.greedy),
            DegradationLevel::Skip => None,
        }
    }
}

/// Stage 2: reconstruct whole windows; windows are independent, so any
/// number of these run concurrently off the shared work queue.
fn run_reconstruction_worker(
    tw: TraceWeaver,
    shed: ShedPolicy,
    metrics: EngineMetrics,
    work: Receiver<WindowJob>,
    done: Sender<(u64, WindowResult)>,
) {
    let ladder = LadderedWeaver::new(tw);
    let mut last_level = None;
    for job in work.iter() {
        let queue_depth = work.len();
        let level = shed.level_for(queue_depth);
        let t0 = std::time::Instant::now();
        let (reconstruction, shed_records) = match ladder.for_level(level) {
            Some(tw) => (tw.reconstruct_records(&job.records), 0),
            None => (Reconstruction::default(), job.records.len()),
        };
        let latency = t0.elapsed();
        let result = WindowResult {
            index: job.index,
            end: job.end,
            records: job.records,
            reconstruction,
            queue_depth,
            latency,
            warm_edges: 0,
            degradation: level,
            shed_records,
        };
        metrics.observe_window(&result, &mut last_level);
        if done.send((job.seq, result)).is_err() {
            return;
        }
    }
}

/// Stage 2, warm variant: a single worker carries the [`DelayRegistry`]
/// through the window stream. Jobs arrive from the windower already in
/// window order, so publishing window k's posterior before picking up
/// window k+1 is exactly "publish in window order" — the emitted stream
/// is byte-identical for every `Params::threads` value because the
/// registry each window sees depends only on the window sequence.
fn run_warm_worker(
    tw: TraceWeaver,
    shed: ShedPolicy,
    metrics: EngineMetrics,
    work: Receiver<WindowJob>,
    done: Sender<(u64, WindowResult)>,
    initial: DelayRegistry,
    registry_out: Sender<DelayRegistry>,
) {
    let ladder = LadderedWeaver::new(tw);
    let mut registry = initial;
    let mut last_level = None;
    for job in work.iter() {
        let queue_depth = work.len();
        let level = shed.level_for(queue_depth);
        let warm_edges = registry.len();
        let t0 = std::time::Instant::now();
        // A skipped window contributes no posterior: the registry carries
        // the last reconstructed window's models forward unchanged.
        let (reconstruction, shed_records) = match ladder.for_level(level) {
            Some(tw) => {
                let (reconstruction, posterior) =
                    tw.reconstruct_records_with_registry(&job.records, &registry);
                registry = posterior;
                (reconstruction, 0)
            }
            None => (Reconstruction::default(), job.records.len()),
        };
        let latency = t0.elapsed();
        let result = WindowResult {
            index: job.index,
            end: job.end,
            records: job.records,
            reconstruction,
            queue_depth,
            latency,
            warm_edges,
            degradation: level,
            shed_records,
        };
        metrics.observe_window(&result, &mut last_level);
        if done.send((job.seq, result)).is_err() {
            break;
        }
    }
    let _ = registry_out.send(registry);
}

/// Stage 3: restore window order (workers finish out of order) and emit.
fn run_collector(done: Receiver<(u64, WindowResult)>, out: Sender<WindowResult>) {
    let mut pending: HashMap<u64, WindowResult> = HashMap::new();
    let mut next: u64 = 0;
    for (seq, result) in done.iter() {
        pending.insert(seq, result);
        while let Some(ready) = pending.remove(&next) {
            if out.send(ready).is_err() {
                return;
            }
            next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_core::Params;
    use tw_model::metrics::end_to_end_accuracy_all_roots;
    use tw_sim::apps::two_service_chain;
    use tw_sim::{Simulator, Workload};

    #[test]
    fn online_matches_offline_accuracy() {
        let app = two_service_chain(50);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 500.0, Nanos::from_secs(3)));

        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(500),
                grace: Nanos::from_millis(100),
                channel_capacity: 1024,
                threads: 1,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        // Stream records in time order, as a capture agent would.
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);

        let mut windows = Vec::new();
        // Drain live results then the shutdown flush.
        let engine_results = engine.results().clone();
        windows.extend(engine.shutdown());
        windows.extend(engine_results.try_iter());

        assert!(
            windows.len() >= 4,
            "expected several windows, got {}",
            windows.len()
        );
        // Merge all window mappings and compare against truth.
        let mut merged = tw_model::Mapping::new();
        for w in &windows {
            merged.merge(w.reconstruction.mapping.clone());
        }
        let acc = end_to_end_accuracy_all_roots(&merged, &out.truth);
        assert!(acc.ratio() > 0.85, "online accuracy {}", acc.ratio());
        // Every record was processed exactly once.
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
        // Health signal available per window.
        for w in &windows {
            let f = w.mapped_fraction();
            assert!((0.0..=1.0).contains(&f));
            assert!(f > 0.8, "window {} mapped only {f}", w.index);
        }
    }

    /// A multi-worker pipeline must emit the same windows, in the same
    /// order, with the same mappings as the single-worker engine — the
    /// collector restores order, workers only change wall time.
    #[test]
    fn pipelined_workers_match_sequential() {
        let app = two_service_chain(53);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);

        let run = |threads: usize| -> Vec<WindowResult> {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            let engine = OnlineEngine::start(
                tw,
                OnlineConfig {
                    window: Nanos::from_millis(250),
                    grace: Nanos::from_millis(50),
                    channel_capacity: 1024,
                    threads,
                    ..OnlineConfig::default()
                },
            );
            let ingest = engine.ingest_handle();
            for r in &records {
                ingest.send(*r).unwrap();
            }
            drop(ingest);
            engine.shutdown()
        };

        let seq = run(1);
        let par = run(4);
        assert!(
            seq.len() >= 4,
            "expected several windows, got {}",
            seq.len()
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.index, b.index, "window order must be restored");
            assert_eq!(a.end, b.end);
            assert_eq!(a.records, b.records);
            for r in &a.records {
                assert_eq!(
                    a.reconstruction.mapping.children(r.rpc),
                    b.reconstruction.mapping.children(r.rpc),
                    "mapping diverged in window {}",
                    a.index
                );
            }
            // Worker metrics are populated.
            assert!(a.latency.as_nanos() > 0);
            assert!(b.queue_depth <= seq.len());
        }
    }

    #[test]
    fn shutdown_flushes_partial_window() {
        let app = two_service_chain(51);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 100.0, Nanos::from_millis(100)));

        let tw = TraceWeaver::new(call_graph, Params::default());
        // Window far longer than the run: nothing flushes until shutdown.
        let engine = OnlineEngine::start(tw, OnlineConfig::default());
        let ingest = engine.ingest_handle();
        for r in &out.records {
            ingest.send(*r).unwrap();
        }
        drop(ingest);
        let windows = engine.shutdown();
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
    }

    #[test]
    fn windows_are_ordered() {
        let app = two_service_chain(52);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 300.0, Nanos::from_secs(2)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                channel_capacity: 1024,
                threads: 1,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);
        let results = engine.results().clone();
        let mut windows: Vec<WindowResult> = engine.shutdown();
        windows.extend(results.try_iter());
        windows.sort_by_key(|w| w.index);
        for pair in windows.windows(2) {
            assert!(pair[0].end <= pair[1].end);
        }
    }

    #[test]
    fn shed_policy_ladder_order() {
        let p = ShedPolicy {
            shrink_batch_at: 2,
            greedy_at: 4,
            skip_at: 8,
            forced: None,
        };
        assert_eq!(p.level_for(0), DegradationLevel::Full);
        assert_eq!(p.level_for(1), DegradationLevel::Full);
        assert_eq!(p.level_for(2), DegradationLevel::ShrinkBatch);
        assert_eq!(p.level_for(4), DegradationLevel::Greedy);
        assert_eq!(p.level_for(100), DegradationLevel::Skip);
        assert_eq!(
            ShedPolicy::default().level_for(usize::MAX - 1),
            DegradationLevel::Full,
            "default policy never sheds"
        );
        let forced = ShedPolicy {
            forced: Some(DegradationLevel::Greedy),
            ..ShedPolicy::default()
        };
        assert_eq!(forced.level_for(0), DegradationLevel::Greedy);
        assert!(DegradationLevel::Full < DegradationLevel::Skip);
    }

    /// A forced degradation level must shed identically at every worker
    /// count — the deterministic half of the ladder (queue-depth-driven
    /// shedding is inherently timing-dependent and defaults off).
    #[test]
    fn forced_degradation_is_deterministic_across_threads() {
        let app = two_service_chain(57);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);

        let run = |threads: usize, level: DegradationLevel| -> Vec<WindowResult> {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            let engine = OnlineEngine::start(
                tw,
                OnlineConfig {
                    window: Nanos::from_millis(250),
                    grace: Nanos::from_millis(50),
                    channel_capacity: 1024,
                    threads,
                    shed: ShedPolicy {
                        forced: Some(level),
                        ..ShedPolicy::default()
                    },
                    ..OnlineConfig::default()
                },
            );
            let ingest = engine.ingest_handle();
            for r in &records {
                ingest.send(*r).unwrap();
            }
            drop(ingest);
            engine.shutdown()
        };

        for level in [DegradationLevel::ShrinkBatch, DegradationLevel::Greedy] {
            let runs: Vec<Vec<WindowResult>> = [1, 2, 8].iter().map(|&t| run(t, level)).collect();
            assert!(runs[0].len() >= 4, "got {} windows", runs[0].len());
            for other in &runs[1..] {
                assert_eq!(runs[0].len(), other.len());
                for (a, b) in runs[0].iter().zip(other) {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.records, b.records);
                    assert_eq!(a.degradation, level);
                    assert_eq!(b.degradation, level);
                    for r in &a.records {
                        assert_eq!(
                            a.reconstruction.mapping.children(r.rpc),
                            b.reconstruction.mapping.children(r.rpc),
                            "degraded mapping diverged in window {} at {level:?}",
                            a.index
                        );
                    }
                }
            }
        }
    }

    /// Forced Skip sheds every window with explicit accounting: nothing
    /// reconstructed, nothing silently lost.
    #[test]
    fn forced_skip_accounts_for_all_records() {
        let app = two_service_chain(58);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 300.0, Nanos::from_secs(1)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                channel_capacity: 1024,
                shed: ShedPolicy {
                    forced: Some(DegradationLevel::Skip),
                    ..ShedPolicy::default()
                },
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);
        let windows = engine.shutdown();
        assert!(!windows.is_empty());
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len(), "skip must not lose records");
        for w in &windows {
            assert_eq!(w.degradation, DegradationLevel::Skip);
            assert_eq!(w.shed_records, w.records.len());
            assert!(w.reconstruction.mapping.is_empty());
            assert_eq!(w.mapped_fraction(), 0.0);
        }
    }

    /// Warm mode publishes posteriors in window order: every window after
    /// the first starts from a non-empty prior, and shutdown hands back
    /// the final registry for persistence.
    #[test]
    fn warm_engine_carries_registry_across_windows() {
        let app = two_service_chain(54);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                channel_capacity: 1024,
                warm_start: true,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);
        let (windows, registry) = engine.shutdown_with_registry();
        assert!(windows.len() >= 4, "got {} windows", windows.len());
        assert_eq!(windows[0].warm_edges, 0, "first window is cold");
        for w in &windows[1..] {
            assert!(w.warm_edges > 0, "window {} did not warm-start", w.index);
        }
        // warm_edges reflects the prior *before* the window was absorbed,
        // so it only grows along the stream.
        for pair in windows.windows(2) {
            assert!(pair[0].warm_edges <= pair[1].warm_edges);
        }
        let registry = registry.expect("warm engine returns its registry");
        assert!(!registry.is_empty());
        assert_eq!(registry.rounds(), windows.len() as u64);
        // Every record still processed exactly once, in window order.
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
        for pair in windows.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
    }
}
