//! Online deployment mode (paper §5.3): a running engine ingests spans in
//! real time and reconstructs traces window by window.
//!
//! Spans arrive on a crossbeam channel (in production they'd arrive as
//! `tw_capture::wire` frames over TCP; the channel models the same
//! stream). The engine buffers records and, whenever the *watermark* (the
//! latest response timestamp seen) passes the current window's end plus a
//! grace period, reconstructs every record that completed inside the
//! window. The grace period plays the paper's role of "the window needs to
//! be chosen based on the known response latency distribution of the app":
//! records of one trace always land in the same window because a trace's
//! root response is its last event.
//!
//! The engine is composed from the staged-pipeline core
//! ([`crate::pipeline`], DESIGN.md §11): every hop is a bounded queue
//! with explicit backpressure and `tw_pipeline_*` telemetry,
//!
//! ```text
//! ingest ─▶ [sanitize] ─▶ window-router ─▶ window/0..N (shards) ─▶ merge ─▶ results
//! ```
//!
//! The *window router* runs sequentially over the arrival stream: it
//! stamps every record with its effective window index (the window the
//! legacy single-threaded windower would have flushed it in), routes it
//! to `hash(index) % shards`, and — when the watermark passes a window's
//! end plus grace — broadcasts a cut mark all shards observe. Each
//! *window shard* buffers its windows and reconstructs one whole window
//! per cut mark (windows are independent, like per-service tasks within
//! one); the *merge* stage restores deterministic global window order by
//! streaming the minimum window index across shard outputs. Because the
//! router's index assignment depends only on arrival order, each window's
//! contents — and therefore each window's reconstruction — are identical
//! for every shard count: 1, 2, and 8 shards emit byte-identical result
//! streams, shards change wall time only.
//!
//! **Warm-start mode** ([`OnlineConfig::warm_start`]) threads a
//! [`DelayRegistry`] through the window stream: window *k*'s posterior is
//! published — in window order — before window *k+1* is reconstructed, so
//! every window after the first skips the seed bootstrap and starts EM
//! from accumulated cross-window evidence. Windows gain a sequential
//! model dependency in this mode, so the warm path runs on a single
//! window shard (the registry chain *is* the order); use
//! [`tw_core::Params::threads`] for intra-window parallelism instead of
//! `OnlineConfig::shards`. The emitted stream stays byte-identical for
//! every thread count.

use crate::archive::ArchiveStage;
use crate::checkpoint::{
    load_checkpoint, CheckpointConfig, CheckpointSources, Checkpointer, RecoveryMetrics,
};
use crate::pipeline::{
    Backpressure, Emitter, FanOut, Pipeline, PipelineBuilder, QueueCfg, Sequenced, ShardEmitters,
    ShardMsg, Stage, StageCtx,
};
use crate::sanitize::{SanitizeConfig, SanitizeMetrics, SanitizeStage, SanitizeStats};
use crate::supervise::{DeadLetterQueue, RestartPolicy, Supervisor};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tw_core::{DelayRegistry, Reconstruction, RegistryWatch, TraceWeaver};
use tw_model::span::RpcRecord;
use tw_model::time::Nanos;
use tw_store::{spawn_compactor, ArchiveConfig, CompactorHandle, TraceArchive};
use tw_telemetry::trace::{SpanGuard, SpanRecorder};
use tw_telemetry::{Buckets, Counter, Gauge, Histogram, Registry};

/// How much of the reconstruction pipeline a window ran through — the
/// load-shedding ladder of DESIGN.md §9, ordered lightest to heaviest
/// degradation. Levels are strictly ordered: a deeper queue never picks a
/// lighter level than a shallower one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Normal operation: full batch size, exact joint optimization.
    #[default]
    Full,
    /// Batch size halved: smaller MIS instances, bounded solve cost.
    ShrinkBatch,
    /// Joint optimization disabled: greedy per-span assignment only.
    Greedy,
    /// Window not reconstructed at all; its records are carried through
    /// with explicit accounting ([`WindowResult::shed_records`]).
    Skip,
}

/// When to shed load, keyed on work-queue depth (windows waiting when a
/// worker picks up a job). Thresholds default to `usize::MAX` — **never**
/// — because queue depth is timing-dependent: enabling any threshold
/// forfeits the byte-identical-across-thread-counts guarantee. `forced`
/// pins every window to one level regardless of queue depth, which is
/// both the deterministic escape hatch for tests/benchmarks and a manual
/// operator override.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Queue depth at which batch size is halved.
    pub shrink_batch_at: usize,
    /// Queue depth at which joint optimization is dropped.
    pub greedy_at: usize,
    /// Queue depth at which whole windows are skipped.
    pub skip_at: usize,
    /// Pin every window to this level (ignores queue depth entirely).
    pub forced: Option<DegradationLevel>,
    /// Slope-driven ladder (DESIGN.md §9 follow-up): instead of static
    /// depth thresholds, move one rung when the *EWMA of the queue-depth
    /// delta per cut tick* crosses a slope bound, with a hold-down so the
    /// ladder doesn't flap. Static thresholds are ignored while set;
    /// `forced` still wins over everything.
    pub adaptive: Option<AdaptiveShed>,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            shrink_batch_at: usize::MAX,
            greedy_at: usize::MAX,
            skip_at: usize::MAX,
            forced: None,
            adaptive: None,
        }
    }
}

/// Parameters of the slope-driven shed ladder. The signal is the change
/// in the shard's input-queue depth (`tw_pipeline_queue_depth`) between
/// consecutive window-cut ticks, smoothed with an EWMA: a persistently
/// positive slope means ingest outruns reconstruction *now*, before any
/// absolute threshold is reached; a negative slope means the backlog is
/// draining and it is safe to climb back down. Hysteresis comes from two
/// asymmetries: `down_slope` is strictly below `up_slope` (a dead band
/// where the ladder holds), and any transition arms a `hold` countdown of
/// ticks during which no further transition fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveShed {
    /// EWMA smoothing factor for the per-tick depth delta, in (0, 1].
    pub alpha: f64,
    /// Escalate one rung when the smoothed slope exceeds this
    /// (items/tick).
    pub up_slope: f64,
    /// Relax one rung when the smoothed slope falls below this
    /// (typically negative).
    pub down_slope: f64,
    /// Cut ticks to hold after a transition before the next one may fire.
    pub hold: u32,
}

impl Default for AdaptiveShed {
    fn default() -> Self {
        AdaptiveShed {
            alpha: 0.3,
            up_slope: 0.5,
            down_slope: -0.25,
            hold: 3,
        }
    }
}

/// Per-shard runtime state of the adaptive ladder.
#[derive(Debug, Clone)]
struct AdaptiveState {
    cfg: AdaptiveShed,
    ewma: f64,
    last_depth: f64,
    rung: usize,
    cooldown: u32,
    primed: bool,
}

impl AdaptiveState {
    const LEVELS: [DegradationLevel; 4] = [
        DegradationLevel::Full,
        DegradationLevel::ShrinkBatch,
        DegradationLevel::Greedy,
        DegradationLevel::Skip,
    ];

    fn new(cfg: AdaptiveShed) -> Self {
        AdaptiveState {
            cfg,
            ewma: 0.0,
            last_depth: 0.0,
            rung: 0,
            cooldown: 0,
            primed: false,
        }
    }

    /// Advance one cut tick with the observed input-queue depth and
    /// return the rung to run the next window at.
    fn on_tick(&mut self, depth: usize) -> DegradationLevel {
        let depth = depth as f64;
        if !self.primed {
            self.primed = true;
            self.last_depth = depth;
        }
        let delta = depth - self.last_depth;
        self.last_depth = depth;
        let alpha = self.cfg.alpha.clamp(f64::MIN_POSITIVE, 1.0);
        self.ewma = alpha * delta + (1.0 - alpha) * self.ewma;
        if self.cooldown > 0 {
            self.cooldown -= 1;
        } else if self.ewma > self.cfg.up_slope && self.rung < Self::LEVELS.len() - 1 {
            self.rung += 1;
            self.cooldown = self.cfg.hold;
        } else if self.ewma < self.cfg.down_slope && self.rung > 0 {
            self.rung -= 1;
            self.cooldown = self.cfg.hold;
        }
        Self::LEVELS[self.rung]
    }
}

impl ShedPolicy {
    /// The ladder rung for a window picked up at `queue_depth`. The
    /// heaviest threshold reached wins, so thresholds need not be ordered
    /// (though `shrink ≤ greedy ≤ skip` is the sensible configuration).
    pub fn level_for(&self, queue_depth: usize) -> DegradationLevel {
        if let Some(level) = self.forced {
            return level;
        }
        if queue_depth >= self.skip_at {
            DegradationLevel::Skip
        } else if queue_depth >= self.greedy_at {
            DegradationLevel::Greedy
        } else if queue_depth >= self.shrink_batch_at {
            DegradationLevel::ShrinkBatch
        } else {
            DegradationLevel::Full
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Window length (paper suggests 1–5s of spans per optimization).
    pub window: Nanos,
    /// Extra wait beyond the window end before processing, covering the
    /// app's maximum response latency.
    pub grace: Nanos,
    /// Channel capacity for ingestion back-pressure: every record-carrying
    /// queue in the pipeline graph is bounded to this many items.
    pub channel_capacity: usize,
    /// Legacy name for [`shards`](OnlineConfig::shards): how many windows
    /// reconstruct concurrently. Used (clamped to at least 1) when
    /// `shards` is 0; ignored otherwise.
    pub threads: usize,
    /// Window shards: the window stream fans out over this many parallel
    /// windowing+reconstruction stages, keyed by a stable hash of the
    /// window index, and a merge stage restores global window order.
    /// Results are byte-identical for every value — shards change wall
    /// time only. `0` (the default) falls back to
    /// [`threads`](OnlineConfig::threads). Clamped to 1 in warm-start
    /// mode (the registry chain serializes windows).
    pub shards: usize,
    /// Run a [`SanitizeStage`] between ingest and windowing, inside the
    /// same supervised graph ([`crate::serve_online_sanitized`] sets
    /// this). `None` feeds records to the window router unfiltered.
    pub sanitize: Option<SanitizeConfig>,
    /// Overflow policy for the record-carrying queues
    /// ([`Backpressure::Block`] by default — lossless, pressure
    /// propagates to ingest). [`Backpressure::Shed`] drops records at
    /// full queues with `tw_pipeline_shed_total` accounting; window-cut
    /// marks always survive.
    pub backpressure: Backpressure,
    /// Carry a [`DelayRegistry`] across windows: each window warm-starts
    /// from the posterior published by the previous window, decoupling
    /// estimation quality from window size (§5.3's window-sizing
    /// tension).
    pub warm_start: bool,
    /// Starting registry for warm mode — e.g. loaded from a previous
    /// run's posterior or `twctl learn-delays` output. `None` starts
    /// empty (the first window seeds cold and publishes the first
    /// posterior).
    pub initial_registry: Option<DelayRegistry>,
    /// Back-pressure load shedding (DESIGN.md §9). Disabled by default to
    /// preserve determinism across thread counts.
    pub shed: ShedPolicy,
    /// Per-stage restart policy for the supervised pipeline (DESIGN.md
    /// §12): a panicking stage quarantines the offending record to the
    /// dead-letter queue and resumes within this backoff budget instead
    /// of tearing the graph down.
    pub restart: RestartPolicy,
    /// Crash-safe checkpointing (DESIGN.md §12): periodically persist the
    /// sealed-window watermark, sanitizer skew state, and warm registry;
    /// restore them on the next start and resume past the watermark.
    /// `None` (the default) disables checkpointing entirely.
    pub checkpoint: Option<CheckpointConfig>,
    /// Registry for the engine's `tw_engine_*` series (window latency and
    /// queue-depth histograms, per-rung window counts, shed-ladder
    /// transitions). Defaults to a private registry; share one across the
    /// server/sanitizer/engine (and a `MetricsServer`) to scrape the whole
    /// pipeline. Telemetry never feeds back into reconstruction, so
    /// results stay byte-identical with or without observers.
    pub telemetry: Registry,
    /// Self-tracing recorder (`tw_telemetry::trace`): when set, every
    /// head-sampled window records one span tree as it flows
    /// sanitize → route → collect → reconstruct → merge hand-off, with
    /// supervisor restarts and checkpoint writes attached as events, and
    /// slow-window latency observations carry `window_id`/`span_id`
    /// exemplars. `None` (the default) disables self-tracing entirely.
    /// Like metrics, tracing never feeds back into reconstruction.
    pub trace: Option<SpanRecorder>,
    /// Durable trace archive (DESIGN.md §14): when set, an archive sink
    /// stage after the merge converts each sealed window's reconstruction
    /// into stored traces and appends them to a segmented on-disk archive
    /// (`tw-store`), queryable via [`OnlineEngine::archive`], `GET
    /// /traces`, and `twctl query`. The archive's durable watermark rides
    /// in the checkpoint so restarts neither re-archive nor lose sealed
    /// windows. `None` (the default) disables archiving entirely.
    pub archive: Option<ArchiveConfig>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: Nanos::from_secs(1),
            grace: Nanos::from_millis(200),
            channel_capacity: 65_536,
            threads: 1,
            shards: 0,
            sanitize: None,
            backpressure: Backpressure::Block,
            warm_start: false,
            initial_registry: None,
            shed: ShedPolicy::default(),
            restart: RestartPolicy::default(),
            checkpoint: None,
            telemetry: Registry::new(),
            trace: None,
            archive: None,
        }
    }
}

/// Registry-backed engine instrumentation, cloned into every worker. The
/// previous per-window latency/queue-depth fields on [`WindowResult`]
/// remain as per-window snapshots; these series are their cumulative view.
#[derive(Debug, Clone)]
struct EngineMetrics {
    windows_full: Counter,
    windows_shrink: Counter,
    windows_greedy: Counter,
    windows_skip: Counter,
    /// Per-worker ladder movements, labeled by the rung moved to.
    transitions: [Counter; 4],
    latency: Histogram,
    pickup_queue_depth: Histogram,
    queue_depth: Gauge,
    records: Counter,
    shed_records: Counter,
    warm_edges: Gauge,
    /// When set, window-latency observations of self-traced windows carry
    /// an OpenMetrics exemplar linking the bucket to the window's span
    /// tree (`window_id`/`span_id`, retrievable via `GET /spans`).
    recorder: Option<SpanRecorder>,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        let windows = |level: &str| {
            registry.counter_with(
                "tw_engine_windows_total",
                "Windows reconstructed, by shed-ladder rung (DESIGN.md §9).",
                &[("shed_level", level)],
            )
        };
        let transition = |level: &str| {
            registry.counter_with(
                "tw_engine_shed_transitions_total",
                "Shed-ladder rung changes between consecutive windows of one worker.",
                &[("shed_level", level)],
            )
        };
        EngineMetrics {
            windows_full: windows("full"),
            windows_shrink: windows("shrink_batch"),
            windows_greedy: windows("greedy"),
            windows_skip: windows("skip"),
            transitions: [
                transition("full"),
                transition("shrink_batch"),
                transition("greedy"),
                transition("skip"),
            ],
            latency: registry.histogram(
                "tw_engine_window_latency_seconds",
                "Wall-clock reconstruction time per window.",
                Buckets::exponential(1e-4, 4.0, 12),
            ),
            pickup_queue_depth: registry.histogram(
                "tw_engine_pickup_queue_depth",
                "Windows waiting in the work queue when a worker picked one up.",
                Buckets::fixed(&[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
            ),
            queue_depth: registry.gauge(
                "tw_engine_queue_depth",
                "Work-queue depth at the most recent window pickup.",
            ),
            records: registry.counter(
                "tw_engine_records_total",
                "Records processed through windows (reconstructed or shed).",
            ),
            shed_records: registry.counter(
                "tw_engine_shed_records_total",
                "Records carried through unreconstructed because their window was skipped.",
            ),
            warm_edges: registry.gauge(
                "tw_engine_warm_edges",
                "Delay-registry edges the most recent warm window started from.",
            ),
            recorder: None,
        }
    }

    fn window_counter(&self, level: DegradationLevel) -> &Counter {
        match level {
            DegradationLevel::Full => &self.windows_full,
            DegradationLevel::ShrinkBatch => &self.windows_shrink,
            DegradationLevel::Greedy => &self.windows_greedy,
            DegradationLevel::Skip => &self.windows_skip,
        }
    }

    /// Record one finished window. `last_level` is the worker-local
    /// previous rung, used to count ladder transitions.
    fn observe_window(&self, result: &WindowResult, last_level: &mut Option<DegradationLevel>) {
        self.window_counter(result.degradation).inc();
        if *last_level != Some(result.degradation) {
            if last_level.is_some() {
                self.transitions[result.degradation as usize].inc();
            }
            *last_level = Some(result.degradation);
        }
        let latency = result.latency.as_secs_f64();
        // root_id is only live before the window's tree is sealed, which
        // holds here: observe_window runs before the shard seals.
        match self.recorder.as_ref().and_then(|r| r.root_id(result.index)) {
            Some(span_id) => {
                let window_id = result.index.to_string();
                let span_id = span_id.to_string();
                self.latency
                    .observe_exemplar(latency, &[("window_id", &window_id), ("span_id", &span_id)]);
            }
            None => self.latency.observe(latency),
        }
        self.pickup_queue_depth.observe(result.queue_depth as f64);
        self.queue_depth.set(result.queue_depth as f64);
        self.records.add(result.records.len() as u64);
        self.shed_records.add(result.shed_records as u64);
        if result.warm_edges > 0 {
            self.warm_edges.set(result.warm_edges as f64);
        }
    }
}

/// One reconstructed window.
#[derive(Debug)]
pub struct WindowResult {
    /// Window index (0-based).
    pub index: u64,
    /// Window end (records with `recv_resp <= end` were processed).
    pub end: Nanos,
    /// Records processed in this window.
    pub records: Vec<RpcRecord>,
    pub reconstruction: Reconstruction,
    /// Windows still waiting in the work queue when this one was picked
    /// up — a live back-pressure signal (persistently > 0 means
    /// reconstruction can't keep up with ingest at this thread count).
    pub queue_depth: usize,
    /// Wall-clock time the reconstruction of this window took.
    pub latency: Duration,
    /// Delay-registry edges this window warm-started from (0 = cold
    /// start: no prior, or warm mode disabled).
    pub warm_edges: usize,
    /// Ladder rung this window ran at (DESIGN.md §9). Anything but
    /// [`DegradationLevel::Full`] means the engine was shedding load.
    pub degradation: DegradationLevel,
    /// Records carried through *without* reconstruction because the
    /// window was shed at [`DegradationLevel::Skip`] (0 otherwise). The
    /// sum of `records.len()` across windows still equals the ingested
    /// record count — skipping never silently drops data.
    pub shed_records: usize,
}

impl WindowResult {
    /// Fraction of this window's incoming spans that received a mapping —
    /// a cheap live health signal for the deployment. A shed (skipped)
    /// window mapped nothing, so it reports 0.
    pub fn mapped_fraction(&self) -> f64 {
        if self.shed_records > 0 {
            return 0.0;
        }
        let (mapped, total) = self
            .reconstruction
            .reports
            .iter()
            .fold((0usize, 0usize), |(m, t), (_, r)| {
                (m + r.mapped_spans, t + r.total_spans)
            });
        if total == 0 {
            1.0
        } else {
            mapped as f64 / total as f64
        }
    }
}

impl Sequenced for WindowResult {
    /// Window indices are globally unique (each window is owned by
    /// exactly one shard) and each shard emits in ascending index order,
    /// so merging on the index restores global window order.
    fn seq(&self) -> u64 {
        self.index
    }
}

/// The window router ([`FanOut`]): the sequential head of the sharded
/// windowing stage. For each record, in arrival order, it computes the
/// *effective window index* — `max(⌈recv_resp / window⌉ − 1, first
/// uncut window)`, exactly the window the legacy single-threaded
/// windower would have flushed the record in (late records land in the
/// first window still open at their arrival) — and routes the record to
/// `shard_hash(index) % shards`. When the watermark passes a window's
/// end plus grace it broadcasts a cut [`ShardMsg::Mark`] every shard
/// observes. Item-before-mark queue order guarantees a window's records
/// are all buffered in its owning shard before any shard sees the cut,
/// so window contents are invariant in the shard count.
struct WindowRouter {
    window: Nanos,
    grace: Nanos,
    watermark: Nanos,
    first_uncut: u64,
    recovery: Option<RouterRecovery>,
    trace: Option<SpanRecorder>,
    /// Open "route" spans, one per sampled window, finished when the
    /// window's cut mark is broadcast.
    route_spans: BTreeMap<u64, SpanGuard>,
}

/// One-shot recovery-gap probe: after a checkpoint restore the router
/// reports, on the first live record, how many window indices fall
/// between the restored watermark and where the stream actually resumes —
/// the windows lost to the crash (bounded by the checkpoint interval).
struct RouterRecovery {
    resumed_at: u64,
    windows_lost: Gauge,
}

impl WindowRouter {
    fn new(window: Nanos, grace: Nanos) -> Self {
        WindowRouter {
            window: Nanos(window.0.max(1)),
            grace,
            watermark: Nanos::ZERO,
            first_uncut: 0,
            recovery: None,
            trace: None,
            route_spans: BTreeMap::new(),
        }
    }

    /// Resume routing at a restored watermark: every window with index
    /// below `first_uncut` was already sealed by the previous process,
    /// so replayed/late records fold into the first still-open window —
    /// nothing before the watermark is re-emitted.
    fn resume(window: Nanos, grace: Nanos, first_uncut: u64, windows_lost: Gauge) -> Self {
        WindowRouter {
            first_uncut,
            recovery: Some(RouterRecovery {
                resumed_at: first_uncut,
                windows_lost,
            }),
            ..WindowRouter::new(window, grace)
        }
    }

    /// Nominal end of window `index`: records with `recv_resp <= end`
    /// belong to it (or an earlier one).
    fn window_end(&self, index: u64) -> u64 {
        (index + 1).saturating_mul(self.window.0)
    }
}

impl FanOut for WindowRouter {
    type In = RpcRecord;
    type Out = (u64, RpcRecord);

    fn name(&self) -> &str {
        "window-router"
    }

    fn route(&mut self, rec: RpcRecord, outs: &mut ShardEmitters<(u64, RpcRecord)>) {
        self.watermark = self.watermark.max(rec.recv_resp);
        let by_ts = rec.recv_resp.0.div_ceil(self.window.0).saturating_sub(1);
        if let Some(probe) = self.recovery.take() {
            // First record after a restore: everything between the
            // checkpointed watermark and this record's nominal window was
            // sealed by a process that died before emitting it.
            probe
                .windows_lost
                .set(by_ts.saturating_sub(probe.resumed_at) as f64);
        }
        let index = by_ts.max(self.first_uncut);
        if let Some(trace) = &self.trace {
            if let std::collections::btree_map::Entry::Vacant(e) = self.route_spans.entry(index) {
                if let Some(guard) = trace.span(index, "route") {
                    e.insert(guard);
                }
            }
        }
        let shard = (crate::pipeline::shard_hash(index) % outs.shards() as u64) as usize;
        outs.send(shard, (index, rec));
        while self.watermark.0
            >= self
                .window_end(self.first_uncut)
                .saturating_add(self.grace.0)
        {
            if let Some(guard) = self.route_spans.remove(&self.first_uncut) {
                guard.event(format!("cut at watermark {}", self.watermark.0));
            }
            outs.broadcast_mark(self.first_uncut);
            self.first_uncut += 1;
        }
    }
    // No flush override: windows still open when the stream closes are
    // flushed by the shards themselves (their input queues close after
    // the router exits).
}

/// Warm-start state carried by the single window shard in warm mode: the
/// registry chain plus the channel that hands the final posterior back
/// through [`OnlineEngine::shutdown_with_registry`].
struct WarmState {
    registry: DelayRegistry,
    out: Sender<DelayRegistry>,
    /// Checkpointing hook: the posterior is published here after every
    /// absorbed window so the checkpointer can persist a warm registry
    /// no staler than one window.
    watch: Option<RegistryWatch>,
}

/// One windowing+reconstruction shard ([`Stage`]): buffers the records
/// of the windows it owns, reconstructs one whole window per cut mark,
/// and flushes still-open windows (in index order) on shutdown — the
/// drain path that guarantees no record is silently dropped.
struct WindowShard {
    name: String,
    window: Nanos,
    shed: ShedPolicy,
    ladder: LadderedWeaver,
    metrics: EngineMetrics,
    /// Open windows owned by this shard, keyed by window index. `len()`
    /// is the shard's backlog — the queue-depth signal the shed ladder
    /// keys on.
    open: BTreeMap<u64, Vec<RpcRecord>>,
    last_level: Option<DegradationLevel>,
    warm: Option<WarmState>,
    /// Slope-driven ladder state ([`ShedPolicy::adaptive`]).
    adaptive: Option<AdaptiveState>,
    /// This shard's sealed watermark (`highest cut index + 1`), sampled
    /// by the checkpointer; the global watermark is the minimum across
    /// shards. `None` when checkpointing is off.
    sealed: Option<Arc<AtomicU64>>,
    /// Self-trace recorder; the shard contributes "collect" (buffering)
    /// and "reconstruct" spans and seals each window's tree after the
    /// merge hand-off.
    trace: Option<SpanRecorder>,
    /// Open "collect" spans for windows this shard owns, finished when
    /// the window's cut mark arrives.
    collect_spans: BTreeMap<u64, SpanGuard>,
}

impl WindowShard {
    /// Ladder rung for the next window. `tick_depth` is the shard's
    /// input-queue depth at the cut mark (`Some` only on the live mark
    /// path — the adaptive ladder's signal); the shutdown flush passes
    /// `None` and falls back to the static thresholds, so draining never
    /// sheds what a live overload would not have.
    fn pick_level(&mut self, tick_depth: Option<usize>, backlog: usize) -> DegradationLevel {
        if let Some(level) = self.shed.forced {
            return level;
        }
        match (self.adaptive.as_mut(), tick_depth) {
            (Some(state), Some(depth)) => state.on_tick(depth),
            (Some(state), None) => AdaptiveState::LEVELS[state.rung],
            (None, _) => self.shed.level_for(backlog),
        }
    }

    fn reconstruct(
        &mut self,
        index: u64,
        records: Vec<RpcRecord>,
        backlog: usize,
        level: DegradationLevel,
    ) -> WindowResult {
        let end = Nanos((index + 1).saturating_mul(self.window.0));
        let warm_edges = self.warm.as_ref().map_or(0, |w| w.registry.len());
        let span = self
            .trace
            .as_ref()
            .and_then(|t| t.span(index, "reconstruct"));
        if let Some(span) = &span {
            span.event(format!("level {level:?}, {} records", records.len()));
        }
        let t0 = std::time::Instant::now();
        // A skipped window contributes no posterior: the registry carries
        // the last reconstructed window's models forward unchanged.
        let (reconstruction, shed_records) = match self.ladder.for_level(level) {
            Some(tw) => match self.warm.as_mut() {
                Some(warm) => {
                    let (reconstruction, posterior) =
                        tw.reconstruct_records_with_registry(&records, &warm.registry);
                    warm.registry = posterior;
                    if let Some(watch) = &warm.watch {
                        watch.publish(&warm.registry);
                    }
                    (reconstruction, 0)
                }
                None => (tw.reconstruct_records(&records), 0),
            },
            None => (Reconstruction::default(), records.len()),
        };
        let latency = t0.elapsed();
        let result = WindowResult {
            index,
            end,
            records,
            reconstruction,
            queue_depth: backlog,
            latency,
            warm_edges,
            degradation: level,
            shed_records,
        };
        drop(span); // reconstruction done; observe_window still needs the live tree
        self.metrics.observe_window(&result, &mut self.last_level);
        result
    }

    /// Seal `index`'s span tree after its result was handed to the merge.
    fn seal_trace(&self, index: u64) {
        if let Some(trace) = &self.trace {
            trace.event(index, None, "merge hand-off");
            trace.seal(index);
        }
    }
}

impl Stage for WindowShard {
    type In = ShardMsg<(u64, RpcRecord)>;
    type Out = WindowResult;

    fn name(&self) -> &str {
        &self.name
    }

    fn process(
        &mut self,
        msg: ShardMsg<(u64, RpcRecord)>,
        ctx: &StageCtx,
        out: &mut Emitter<WindowResult>,
    ) {
        match msg {
            ShardMsg::Item((index, rec)) => {
                if let Some(trace) = &self.trace {
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        self.collect_spans.entry(index)
                    {
                        if let Some(guard) = trace.span(index, "collect") {
                            e.insert(guard);
                        }
                    }
                }
                self.open.entry(index).or_default().push(rec);
            }
            ShardMsg::Mark(index) => {
                // Every shard observes every mark in cut order, so each
                // shard's sealed watermark advances even for windows it
                // does not own — the min across shards is the global
                // sealed frontier the checkpointer persists.
                let level = self.pick_level(Some(ctx.queue_depth), self.open.len());
                // Only the owning shard buffered this window; everyone
                // else observes the mark and moves on. Empty windows were
                // never buffered anywhere and produce no result.
                if let Some(records) = self.open.remove(&index) {
                    drop(self.collect_spans.remove(&index)); // buffering ends at the cut
                    let backlog = self.open.len();
                    let result = self.reconstruct(index, records, backlog, level);
                    out.emit(result);
                    self.seal_trace(index);
                }
                if let Some(sealed) = &self.sealed {
                    sealed.fetch_max(index + 1, Ordering::AcqRel);
                }
            }
        }
    }

    /// Drain on shutdown: reconstruct every still-open window, in index
    /// order, through the same ladder — partially filled windows flush
    /// through reconstruction instead of being dropped.
    fn flush(&mut self, _ctx: &StageCtx, out: &mut Emitter<WindowResult>) {
        let open = std::mem::take(&mut self.open);
        let mut backlog = open.len();
        for (index, records) in open {
            backlog -= 1;
            let level = self.pick_level(None, backlog);
            drop(self.collect_spans.remove(&index));
            let result = self.reconstruct(index, records, backlog, level);
            out.emit(result);
            self.seal_trace(index);
            if let Some(sealed) = &self.sealed {
                sealed.fetch_max(index + 1, Ordering::AcqRel);
            }
        }
        if let Some(warm) = self.warm.take() {
            if let Some(watch) = &warm.watch {
                watch.publish(&warm.registry);
            }
            let _ = warm.out.send(warm.registry);
        }
    }
}

/// The online engine: a supervised [`Pipeline`] composing (optional)
/// sanitize → window-router → window shards → merge, built with
/// [`PipelineBuilder`].
///
/// Dropping / closing the ingest sender cascades an ordered shutdown
/// through the graph: every stage drains its input, flushes buffered
/// state (open windows reconstruct, they are never dropped), and closes
/// its output.
pub struct OnlineEngine {
    ingest: Option<Sender<RpcRecord>>,
    results: Receiver<WindowResult>,
    pipeline: Option<Pipeline<WindowResult>>,
    registry: Option<Receiver<DelayRegistry>>,
    sanitize_metrics: Option<SanitizeMetrics>,
    dead_letters: DeadLetterQueue,
    checkpointer: Option<Checkpointer>,
    archive: Option<Arc<TraceArchive>>,
    compactor: Option<CompactorHandle>,
    /// Stage failures surfaced by the last drain (escalated supervisors,
    /// merge-thread panics) — populated by shutdown, empty on a clean run.
    failures: Vec<String>,
}

impl OnlineEngine {
    pub fn start(tw: TraceWeaver, mut config: OnlineConfig) -> Self {
        let warm = config.warm_start;
        // Warm windows chain through the registry (k+1 starts from k's
        // posterior), so the warm path runs on a single shard.
        let shards = if warm {
            1
        } else if config.shards > 0 {
            config.shards
        } else {
            config.threads.max(1)
        };
        let shed = config.shed;
        let window = Nanos(config.window.0.max(1));
        let trace = config.trace.clone();
        let mut metrics = EngineMetrics::new(&config.telemetry);
        metrics.recorder = trace.clone();
        let record_queue = QueueCfg {
            capacity: config.channel_capacity,
            policy: config.backpressure,
        };

        // Restore persisted online state before anything is built: the
        // watermark seeds the router, the sanitizer snapshot seeds the
        // skew filters, and the checkpointed registry takes precedence
        // over any configured bootstrap (it is strictly newer).
        let recovery = config
            .checkpoint
            .as_ref()
            .map(|_| RecoveryMetrics::new(&config.telemetry));
        let mut start_watermark = 0u64;
        let mut sanitizer_snapshot = None;
        if let (Some(ck), Some(rm)) = (&config.checkpoint, &recovery) {
            match load_checkpoint(&ck.dir) {
                Ok(doc) if doc.window_ns == window.0 => {
                    rm.restores.inc();
                    rm.watermark.set(doc.watermark as f64);
                    start_watermark = doc.watermark;
                    sanitizer_snapshot = doc.sanitizer;
                    if let Some(registry) = doc.registry {
                        config.initial_registry = Some(registry);
                    }
                }
                Ok(doc) => {
                    // A watermark computed under a different window size
                    // indexes different windows — unusable, cold start.
                    eprintln!(
                        "tw-online: checkpoint window {}ns != configured {}ns; cold start",
                        doc.window_ns, window.0
                    );
                    rm.cold_corrupt.inc();
                }
                Err(err) => {
                    rm.count_cold_start(&err);
                    if !matches!(err, crate::checkpoint::CheckpointError::Missing) {
                        eprintln!("tw-online: checkpoint not restored: {err}; cold start");
                    }
                }
            }
        }
        // Open the archive before the router is seeded: the resume point
        // must not outrun the archive's durable watermark, or windows
        // sealed-but-not-yet-archived before the crash would never reach
        // a segment. `min(checkpoint, archive)` re-reconstructs the gap
        // (deterministically, so downstream consumers see identical
        // windows) and the archive's own watermark dedup skips anything
        // already committed.
        let archive = config.archive.take().map(|cfg| {
            let compact_interval = cfg.compact_interval;
            let archive = Arc::new(
                TraceArchive::open(cfg, &config.telemetry)
                    .expect("tw-online: archive directory unavailable"),
            );
            (archive, compact_interval)
        });
        if let Some((archive, _)) = &archive {
            let archived = archive.watermark();
            if archived < start_watermark {
                eprintln!(
                    "tw-online: archive watermark {archived} behind checkpoint \
                     {start_watermark}; resuming at {archived} to re-archive the gap"
                );
                start_watermark = archived;
            }
        }
        let mut sources = config
            .checkpoint
            .as_ref()
            .map(|_| CheckpointSources::new(shards, window.0, start_watermark));
        if let (Some(src), Some((archive, _))) = (&mut sources, &archive) {
            src.archive = Some(archive.watermark_handle());
        }

        // Each shard reconstructs with an equal share of the configured
        // intra-window executor threads (results are thread-count
        // invariant, so the share only affects wall time).
        let base = TraceWeaver::new(tw.call_graph().clone(), tw.params().share_threads(shards));

        let (reg_tx, reg_rx) = bounded::<DelayRegistry>(1);
        let mut warm_state = warm.then(|| WarmState {
            registry: config.initial_registry.take().unwrap_or_default(),
            out: reg_tx,
            watch: sources.as_ref().map(|s| s.registry.clone()),
        });

        let mut supervisor = Supervisor::new(config.restart, DeadLetterQueue::default());
        if let Some(recorder) = &trace {
            supervisor = supervisor.with_recorder(recorder.clone());
        }
        let dead_letters = supervisor.dead_letters().clone();
        let (ingest_tx, builder) =
            PipelineBuilder::<RpcRecord>::source(&config.telemetry, record_queue);
        let builder = builder.supervised(supervisor);
        let (builder, sanitize_metrics) = match config.sanitize.take() {
            Some(cfg) => {
                let mut stage = SanitizeStage::new_in(cfg, &config.telemetry);
                if let Some(snapshot) = &sanitizer_snapshot {
                    stage.restore(snapshot);
                }
                if let Some(recorder) = &trace {
                    stage = stage.with_trace(recorder.clone(), window.0);
                }
                if let (Some(src), Some(ck)) = (&sources, &config.checkpoint) {
                    stage = stage.publish_snapshots(src.sanitizer.clone(), ck.snapshot_records);
                }
                let handle = stage.metrics_handle();
                (builder.stage(stage, record_queue), Some(handle))
            }
            None => (builder, None),
        };
        let mut router = match (&recovery, start_watermark) {
            (Some(rm), w) if w > 0 => {
                WindowRouter::resume(window, config.grace, w, rm.windows_lost.clone())
            }
            _ => WindowRouter::new(window, config.grace),
        };
        router.trace = trace.clone();
        let sealed = sources.as_ref().map(|s| s.sealed.clone());
        let builder = builder.shard(
            shards,
            router,
            |i| WindowShard {
                name: format!("window/{i}"),
                window,
                shed,
                ladder: LadderedWeaver::new(base.clone()),
                metrics: metrics.clone(),
                open: BTreeMap::new(),
                last_level: None,
                warm: warm_state.take(),
                adaptive: shed.adaptive.map(AdaptiveState::new),
                sealed: sealed.as_ref().map(|v| v[i].clone()),
                trace: trace.clone(),
                collect_spans: BTreeMap::new(),
            },
            record_queue,
        );
        // The archive sink rides after the merge, where window order is
        // global and deterministic. Its hop always blocks: window results
        // are never shed, whatever the record queues' policy.
        let builder = match &archive {
            Some((archive, _)) => builder.stage(
                ArchiveStage::new(archive.clone()),
                QueueCfg {
                    capacity: config.channel_capacity,
                    policy: Backpressure::Block,
                },
            ),
            None => builder,
        };
        let pipeline = builder.build();
        let compactor = archive
            .as_ref()
            .map(|(archive, interval)| spawn_compactor(archive, *interval));

        let checkpointer = match (config.checkpoint.as_ref(), sources, recovery) {
            (Some(ck), Some(sources), Some(rm)) => {
                Some(Checkpointer::spawn(ck, sources, rm, trace.clone()))
            }
            _ => None,
        };

        OnlineEngine {
            ingest: Some(ingest_tx),
            results: pipeline.results().clone(),
            pipeline: Some(pipeline),
            registry: warm.then_some(reg_rx),
            sanitize_metrics,
            dead_letters,
            checkpointer,
            archive: archive.map(|(archive, _)| archive),
            compactor,
            failures: Vec::new(),
        }
    }

    /// The engine's trace archive, when [`OnlineConfig::archive`] was
    /// set. Shares state with the running archive stage, so it is
    /// queryable live and stays readable after shutdown.
    pub fn archive(&self) -> Option<&Arc<TraceArchive>> {
        self.archive.as_ref()
    }

    /// Sender half for span ingestion (clone freely across capture
    /// threads).
    pub fn ingest_handle(&self) -> Sender<RpcRecord> {
        self.ingest.as_ref().expect("engine running").clone()
    }

    /// Receiver of reconstructed windows, emitted in window order.
    pub fn results(&self) -> &Receiver<WindowResult> {
        &self.results
    }

    /// Live snapshot of the embedded sanitize stage's per-reason counters
    /// (`None` when [`OnlineConfig::sanitize`] was not set). Stays
    /// readable after shutdown.
    pub fn sanitize_stats(&self) -> Option<SanitizeStats> {
        self.sanitize_metrics.as_ref().map(SanitizeMetrics::stats)
    }

    /// The supervised pipeline's dead-letter queue: records quarantined
    /// because a stage panicked on them (DESIGN.md §12). Shares state
    /// with the running graph, so it is inspectable live and stays
    /// readable after shutdown.
    pub fn dead_letters(&self) -> &DeadLetterQueue {
        &self.dead_letters
    }

    /// Stage failures surfaced by the drain (escalated supervisors or a
    /// panicked merge thread), rendered for operators. Empty before
    /// shutdown and after a clean run.
    pub fn failures(&self) -> &[String] {
        &self.failures
    }

    /// Stage names of the underlying pipeline graph, in topological
    /// order.
    pub fn stage_names(&self) -> Vec<String> {
        self.pipeline
            .as_ref()
            .map(|p| p.stage_names().iter().map(|s| s.to_string()).collect())
            .unwrap_or_default()
    }

    /// Close ingestion, flush, and wait for the pipeline to drain.
    /// Returns any remaining window results.
    pub fn shutdown(self) -> Vec<WindowResult> {
        self.shutdown_with_registry().0
    }

    /// Like [`shutdown`](Self::shutdown), but also returns the final
    /// delay registry — the last window's posterior — when the engine ran
    /// in warm-start mode (`None` in cold mode). Persist it (see
    /// `save_registry`) to warm-start the next engine across restarts.
    ///
    /// The shutdown is ordered and drain-safe: closing the ingest sender
    /// cascades end-of-stream down the graph, every still-open window
    /// flushes *through reconstruction* before its shard exits, and the
    /// results queue is drained while stages are joined, so nothing is
    /// silently dropped and a bounded results queue can never deadlock
    /// the join.
    pub fn shutdown_with_registry(mut self) -> (Vec<WindowResult>, Option<DelayRegistry>) {
        let results = self.drain();
        let registry = self.registry.take().and_then(|rx| rx.try_recv().ok());
        (results, registry)
    }

    /// Like [`shutdown`](Self::shutdown), but also returns the embedded
    /// sanitize stage's final per-reason counters (`None` when
    /// [`OnlineConfig::sanitize`] was not set) — final because the drain
    /// completed before the snapshot was taken.
    pub fn shutdown_with_stats(mut self) -> (Vec<WindowResult>, Option<SanitizeStats>) {
        let results = self.drain();
        let stats = self.sanitize_metrics.as_ref().map(SanitizeMetrics::stats);
        (results, stats)
    }

    fn drain(&mut self) -> Vec<WindowResult> {
        self.ingest.take(); // close the source: the shutdown cascade begins
        let results = match self.pipeline.take() {
            Some(pipeline) => {
                let report = pipeline.shutdown();
                for failure in &report.failures {
                    eprintln!("tw-online: {failure}");
                }
                self.failures = report.failures.iter().map(|f| f.to_string()).collect();
                report.results
            }
            None => Vec::new(),
        };
        // The archive stage's flush sealed everything during the drain;
        // stop the background compactor after, then flush the final
        // checkpoint so it samples the fully-advanced archive watermark.
        if let Some(compactor) = self.compactor.take() {
            compactor.stop();
        }
        // Final checkpoint after the drain: a clean shutdown persists the
        // fully-sealed watermark, so a restart replays nothing.
        if let Some(checkpointer) = self.checkpointer.take() {
            checkpointer.stop_and_flush();
        }
        results
    }
}

impl Drop for OnlineEngine {
    fn drop(&mut self) {
        self.ingest.take();
        // Pipeline::drop drains and joins the graph.
        self.pipeline.take();
        // CompactorHandle::drop stops the maintenance thread.
        self.compactor.take();
        // Checkpointer::drop stops the writer without a final flush.
        self.checkpointer.take();
    }
}

/// The configured engine plus its pre-built degraded variants, one per
/// shedding rung: halving `batch_size` and dropping joint optimization
/// are `Params` changes, so each rung is just the same call graph under
/// different parameters, built once per worker instead of per window.
struct LadderedWeaver {
    full: TraceWeaver,
    shrink: TraceWeaver,
    greedy: TraceWeaver,
}

impl LadderedWeaver {
    fn new(full: TraceWeaver) -> Self {
        let mut shrunk = *full.params();
        shrunk.batch_size = (shrunk.batch_size / 2).max(1);
        let shrink = TraceWeaver::new(full.call_graph().clone(), shrunk);
        let greedy = TraceWeaver::new(
            full.call_graph().clone(),
            full.params().ablate_joint_optimization(),
        );
        LadderedWeaver {
            full,
            shrink,
            greedy,
        }
    }

    /// Engine to reconstruct with at `level`; `None` means skip the
    /// window entirely.
    fn for_level(&self, level: DegradationLevel) -> Option<&TraceWeaver> {
        match level {
            DegradationLevel::Full => Some(&self.full),
            DegradationLevel::ShrinkBatch => Some(&self.shrink),
            DegradationLevel::Greedy => Some(&self.greedy),
            DegradationLevel::Skip => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_core::Params;
    use tw_model::metrics::end_to_end_accuracy_all_roots;
    use tw_sim::apps::two_service_chain;
    use tw_sim::{Simulator, Workload};

    #[test]
    fn online_matches_offline_accuracy() {
        let app = two_service_chain(50);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 500.0, Nanos::from_secs(3)));

        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(500),
                grace: Nanos::from_millis(100),
                channel_capacity: 1024,
                threads: 1,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        // Stream records in time order, as a capture agent would.
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);

        let mut windows = Vec::new();
        // Drain live results then the shutdown flush.
        let engine_results = engine.results().clone();
        windows.extend(engine.shutdown());
        windows.extend(engine_results.try_iter());

        assert!(
            windows.len() >= 4,
            "expected several windows, got {}",
            windows.len()
        );
        // Merge all window mappings and compare against truth.
        let mut merged = tw_model::Mapping::new();
        for w in &windows {
            merged.merge(w.reconstruction.mapping.clone());
        }
        let acc = end_to_end_accuracy_all_roots(&merged, &out.truth);
        assert!(acc.ratio() > 0.85, "online accuracy {}", acc.ratio());
        // Every record was processed exactly once.
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
        // Health signal available per window.
        for w in &windows {
            let f = w.mapped_fraction();
            assert!((0.0..=1.0).contains(&f));
            assert!(f > 0.8, "window {} mapped only {f}", w.index);
        }
    }

    /// A multi-worker pipeline must emit the same windows, in the same
    /// order, with the same mappings as the single-worker engine — the
    /// collector restores order, workers only change wall time.
    #[test]
    fn pipelined_workers_match_sequential() {
        let app = two_service_chain(53);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);

        let run = |threads: usize| -> Vec<WindowResult> {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            let engine = OnlineEngine::start(
                tw,
                OnlineConfig {
                    window: Nanos::from_millis(250),
                    grace: Nanos::from_millis(50),
                    channel_capacity: 1024,
                    threads,
                    ..OnlineConfig::default()
                },
            );
            let ingest = engine.ingest_handle();
            for r in &records {
                ingest.send(*r).unwrap();
            }
            drop(ingest);
            engine.shutdown()
        };

        let seq = run(1);
        let par = run(4);
        assert!(
            seq.len() >= 4,
            "expected several windows, got {}",
            seq.len()
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.index, b.index, "window order must be restored");
            assert_eq!(a.end, b.end);
            assert_eq!(a.records, b.records);
            for r in &a.records {
                assert_eq!(
                    a.reconstruction.mapping.children(r.rpc),
                    b.reconstruction.mapping.children(r.rpc),
                    "mapping diverged in window {}",
                    a.index
                );
            }
            // Worker metrics are populated.
            assert!(a.latency.as_nanos() > 0);
            assert!(b.queue_depth <= seq.len());
        }
    }

    #[test]
    fn shutdown_flushes_partial_window() {
        let app = two_service_chain(51);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 100.0, Nanos::from_millis(100)));

        let tw = TraceWeaver::new(call_graph, Params::default());
        // Window far longer than the run: nothing flushes until shutdown.
        let engine = OnlineEngine::start(tw, OnlineConfig::default());
        let ingest = engine.ingest_handle();
        for r in &out.records {
            ingest.send(*r).unwrap();
        }
        drop(ingest);
        let windows = engine.shutdown();
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
    }

    #[test]
    fn windows_are_ordered() {
        let app = two_service_chain(52);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 300.0, Nanos::from_secs(2)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                channel_capacity: 1024,
                threads: 1,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);
        let results = engine.results().clone();
        let mut windows: Vec<WindowResult> = engine.shutdown();
        windows.extend(results.try_iter());
        windows.sort_by_key(|w| w.index);
        for pair in windows.windows(2) {
            assert!(pair[0].end <= pair[1].end);
        }
    }

    #[test]
    fn shed_policy_ladder_order() {
        let p = ShedPolicy {
            shrink_batch_at: 2,
            greedy_at: 4,
            skip_at: 8,
            ..ShedPolicy::default()
        };
        assert_eq!(p.level_for(0), DegradationLevel::Full);
        assert_eq!(p.level_for(1), DegradationLevel::Full);
        assert_eq!(p.level_for(2), DegradationLevel::ShrinkBatch);
        assert_eq!(p.level_for(4), DegradationLevel::Greedy);
        assert_eq!(p.level_for(100), DegradationLevel::Skip);
        assert_eq!(
            ShedPolicy::default().level_for(usize::MAX - 1),
            DegradationLevel::Full,
            "default policy never sheds"
        );
        let forced = ShedPolicy {
            forced: Some(DegradationLevel::Greedy),
            ..ShedPolicy::default()
        };
        assert_eq!(forced.level_for(0), DegradationLevel::Greedy);
        assert!(DegradationLevel::Full < DegradationLevel::Skip);
    }

    /// A forced degradation level must shed identically at every worker
    /// count — the deterministic half of the ladder (queue-depth-driven
    /// shedding is inherently timing-dependent and defaults off).
    #[test]
    fn forced_degradation_is_deterministic_across_threads() {
        let app = two_service_chain(57);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);

        let run = |threads: usize, level: DegradationLevel| -> Vec<WindowResult> {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            let engine = OnlineEngine::start(
                tw,
                OnlineConfig {
                    window: Nanos::from_millis(250),
                    grace: Nanos::from_millis(50),
                    channel_capacity: 1024,
                    threads,
                    shed: ShedPolicy {
                        forced: Some(level),
                        ..ShedPolicy::default()
                    },
                    ..OnlineConfig::default()
                },
            );
            let ingest = engine.ingest_handle();
            for r in &records {
                ingest.send(*r).unwrap();
            }
            drop(ingest);
            engine.shutdown()
        };

        for level in [DegradationLevel::ShrinkBatch, DegradationLevel::Greedy] {
            let runs: Vec<Vec<WindowResult>> = [1, 2, 8].iter().map(|&t| run(t, level)).collect();
            assert!(runs[0].len() >= 4, "got {} windows", runs[0].len());
            for other in &runs[1..] {
                assert_eq!(runs[0].len(), other.len());
                for (a, b) in runs[0].iter().zip(other) {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.records, b.records);
                    assert_eq!(a.degradation, level);
                    assert_eq!(b.degradation, level);
                    for r in &a.records {
                        assert_eq!(
                            a.reconstruction.mapping.children(r.rpc),
                            b.reconstruction.mapping.children(r.rpc),
                            "degraded mapping diverged in window {} at {level:?}",
                            a.index
                        );
                    }
                }
            }
        }
    }

    /// Forced Skip sheds every window with explicit accounting: nothing
    /// reconstructed, nothing silently lost.
    #[test]
    fn forced_skip_accounts_for_all_records() {
        let app = two_service_chain(58);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 300.0, Nanos::from_secs(1)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                channel_capacity: 1024,
                shed: ShedPolicy {
                    forced: Some(DegradationLevel::Skip),
                    ..ShedPolicy::default()
                },
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);
        let windows = engine.shutdown();
        assert!(!windows.is_empty());
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len(), "skip must not lose records");
        for w in &windows {
            assert_eq!(w.degradation, DegradationLevel::Skip);
            assert_eq!(w.shed_records, w.records.len());
            assert!(w.reconstruction.mapping.is_empty());
            assert_eq!(w.mapped_fraction(), 0.0);
        }
    }

    /// Warm mode publishes posteriors in window order: every window after
    /// the first starts from a non-empty prior, and shutdown hands back
    /// the final registry for persistence.
    #[test]
    fn warm_engine_carries_registry_across_windows() {
        let app = two_service_chain(54);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                channel_capacity: 1024,
                warm_start: true,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        for r in records {
            ingest.send(r).unwrap();
        }
        drop(ingest);
        let (windows, registry) = engine.shutdown_with_registry();
        assert!(windows.len() >= 4, "got {} windows", windows.len());
        assert_eq!(windows[0].warm_edges, 0, "first window is cold");
        for w in &windows[1..] {
            assert!(w.warm_edges > 0, "window {} did not warm-start", w.index);
        }
        // warm_edges reflects the prior *before* the window was absorbed,
        // so it only grows along the stream.
        for pair in windows.windows(2) {
            assert!(pair[0].warm_edges <= pair[1].warm_edges);
        }
        let registry = registry.expect("warm engine returns its registry");
        assert!(!registry.is_empty());
        assert_eq!(registry.rounds(), windows.len() as u64);
        // Every record still processed exactly once, in window order.
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
        for pair in windows.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
    }

    /// The merged result stream is byte-identical at 1, 2, and 8 window
    /// shards — the router stamps window indices before fan-out, so shard
    /// count can only change *where* a window reconstructs, never what it
    /// contains or where it lands in the output order. Runs with the
    /// sanitize stage embedded so the full composed graph is exercised.
    #[test]
    fn sharded_merge_is_deterministic_across_shard_counts() {
        let app = two_service_chain(59);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);

        let run = |shards: usize| -> (Vec<WindowResult>, Vec<String>) {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            let engine = OnlineEngine::start(
                tw,
                OnlineConfig {
                    window: Nanos::from_millis(250),
                    grace: Nanos::from_millis(50),
                    channel_capacity: 64,
                    shards,
                    sanitize: Some(crate::sanitize::SanitizeConfig::default()),
                    ..OnlineConfig::default()
                },
            );
            let names = engine.stage_names();
            let ingest = engine.ingest_handle();
            for r in &records {
                ingest.send(*r).unwrap();
            }
            drop(ingest);
            (engine.shutdown(), names)
        };

        let (base, names) = run(1);
        assert!(base.len() >= 4, "got {} windows", base.len());
        assert!(names.iter().any(|n| n == "sanitize"));
        assert_eq!(names.iter().filter(|n| n.starts_with("window/")).count(), 1);
        let total: usize = base.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len(), "no records lost at 1 shard");
        for shards in [2usize, 8] {
            let (other, names) = run(shards);
            assert_eq!(
                names.iter().filter(|n| n.starts_with("window/")).count(),
                shards
            );
            assert_eq!(base.len(), other.len());
            for (a, b) in base.iter().zip(&other) {
                assert_eq!(a.index, b.index, "merge must restore global order");
                assert_eq!(a.end, b.end);
                assert_eq!(a.records, b.records, "window contents moved between shards");
                for r in &a.records {
                    assert_eq!(
                        a.reconstruction.mapping.children(r.rpc),
                        b.reconstruction.mapping.children(r.rpc),
                        "mapping diverged in window {} at {shards} shards",
                        a.index
                    );
                }
            }
        }
    }

    /// Shutdown drains partial windows *through reconstruction*: windows
    /// that never saw a cut mark still come back reconstructed (mapped
    /// spans, nominal ends) from `shutdown_with_registry`, and in warm
    /// mode the flushed windows are absorbed into the returned registry.
    #[test]
    fn shutdown_drain_reconstructs_unflushed_windows() {
        let app = two_service_chain(60);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 300.0, Nanos::from_millis(400)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);

        // Window far longer than the run: every record is still buffered
        // in an open window when the stream closes.
        let tw = TraceWeaver::new(call_graph, Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_secs(3_600),
                warm_start: true,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        for r in &records {
            ingest.send(*r).unwrap();
        }
        drop(ingest);
        let (windows, registry) = engine.shutdown_with_registry();

        assert!(!windows.is_empty(), "open windows must flush at shutdown");
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len(), "records silently dropped");
        for w in &windows {
            assert!(
                w.reconstruction.summary().mapped_spans > 0,
                "window {} flushed without reconstruction",
                w.index
            );
            assert_eq!(w.end, Nanos((w.index + 1) * Nanos::from_secs(3_600).0));
        }
        let registry = registry.expect("warm engine returns its registry");
        assert_eq!(
            registry.rounds(),
            windows.len() as u64,
            "flushed windows must be absorbed before the registry is returned"
        );
        assert!(!registry.is_empty());
    }

    /// The adaptive ladder escalates on a sustained positive depth slope,
    /// holds inside the dead band, and relaxes on a draining queue — with
    /// a hold-down between transitions so it cannot flap rung-to-rung.
    #[test]
    fn adaptive_ladder_hysteresis() {
        let mut s = AdaptiveState::new(AdaptiveShed {
            alpha: 1.0, // no smoothing: the raw delta is the slope
            up_slope: 0.5,
            down_slope: -0.5,
            hold: 2,
        });
        assert_eq!(s.on_tick(0), DegradationLevel::Full);
        // Depth climbing by 2/tick: escalate, then hold for 2 ticks.
        assert_eq!(s.on_tick(2), DegradationLevel::ShrinkBatch);
        assert_eq!(s.on_tick(4), DegradationLevel::ShrinkBatch, "hold-down");
        assert_eq!(s.on_tick(6), DegradationLevel::ShrinkBatch, "hold-down");
        assert_eq!(s.on_tick(8), DegradationLevel::Greedy);
        // Flat depth sits in the dead band: no transition either way.
        s.cooldown = 0;
        assert_eq!(s.on_tick(8), DegradationLevel::Greedy);
        assert_eq!(s.on_tick(8), DegradationLevel::Greedy);
        // Draining: relax one rung per hold-down period, down to Full.
        assert_eq!(s.on_tick(5), DegradationLevel::ShrinkBatch);
        assert_eq!(s.on_tick(2), DegradationLevel::ShrinkBatch, "hold-down");
        assert_eq!(s.on_tick(0), DegradationLevel::ShrinkBatch, "hold-down");
        assert_eq!(
            s.on_tick(0),
            DegradationLevel::ShrinkBatch,
            "flat: dead band"
        );
        s.last_depth = 2.0; // next tick at depth 0 sees a -2 drain slope
        assert_eq!(s.on_tick(0), DegradationLevel::Full);
    }

    /// Checkpoint round-trip: write a checkpoint at a mid-stream sealed
    /// watermark, restart the engine from it, and replay the remainder of
    /// the stream — the resumed engine must emit windows byte-identical
    /// to the uninterrupted run from the watermark on, at 1, 2, and 8
    /// shards, with `tw_pipeline_recovery_*` reporting the restore and a
    /// zero gap (and the true gap when windows really were lost).
    #[test]
    fn checkpoint_restore_matches_uninterrupted_run() {
        let app = two_service_chain(61);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        // Sorted by response arrival the by-timestamp window index is
        // monotone along the stream (no late records), so a suffix replay
        // reproduces the baseline's routing decisions exactly.
        let mut records = out.records.clone();
        records.sort_by_key(|r| (r.recv_resp, r.rpc));
        let window = Nanos::from_millis(250);
        let by_ts = |r: &RpcRecord| r.recv_resp.0.div_ceil(window.0).saturating_sub(1);

        let run = |shards: usize,
                   dir: Option<&std::path::Path>,
                   recs: &[RpcRecord],
                   telemetry: &Registry|
         -> Vec<WindowResult> {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            let engine = OnlineEngine::start(
                tw,
                OnlineConfig {
                    window,
                    grace: Nanos::from_millis(50),
                    channel_capacity: 1024,
                    shards,
                    checkpoint: dir.map(CheckpointConfig::new),
                    telemetry: telemetry.clone(),
                    ..OnlineConfig::default()
                },
            );
            let ingest = engine.ingest_handle();
            for r in recs {
                ingest.send(*r).unwrap();
            }
            drop(ingest);
            engine.shutdown()
        };

        for shards in [1usize, 2, 8] {
            let baseline = run(shards, None, &records, &Registry::new());
            assert!(baseline.len() >= 4, "got {} windows", baseline.len());
            let watermark = baseline[baseline.len() / 2].index;
            let suffix: Vec<RpcRecord> = records
                .iter()
                .copied()
                .filter(|r| by_ts(r) >= watermark)
                .collect();
            let dir =
                std::env::temp_dir().join(format!("twck-resume-{}-{shards}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            crate::checkpoint::write_checkpoint(
                &dir,
                &crate::checkpoint::CheckpointDoc {
                    watermark,
                    window_ns: window.0,
                    sanitizer: None,
                    registry: None,
                    archived: None,
                },
            )
            .unwrap();
            let telemetry = Registry::new();
            let resumed = run(shards, Some(&dir), &suffix, &telemetry);
            let expected: Vec<&WindowResult> =
                baseline.iter().filter(|w| w.index >= watermark).collect();
            assert_eq!(expected.len(), resumed.len(), "at {shards} shards");
            for (a, b) in expected.iter().zip(&resumed) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.end, b.end);
                assert_eq!(
                    a.records, b.records,
                    "window {} diverged after restore at {shards} shards",
                    a.index
                );
                for r in &a.records {
                    assert_eq!(
                        a.reconstruction.mapping.children(r.rpc),
                        b.reconstruction.mapping.children(r.rpc),
                        "mapping diverged in window {} after restore",
                        a.index
                    );
                }
            }
            let text = telemetry.render();
            assert!(
                text.contains("tw_pipeline_recovery_restores_total 1"),
                "restore not counted:\n{text}"
            );
            assert!(
                text.contains("tw_pipeline_recovery_windows_lost 0"),
                "no gap expected:\n{text}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }

        // Crash gap: resume from watermark W but replay only from W+2 —
        // the probe must report exactly the two windows that died with
        // the previous process.
        let baseline = run(1, None, &records, &Registry::new());
        let watermark = baseline[baseline.len() / 2].index;
        let gap_suffix: Vec<RpcRecord> = records
            .iter()
            .copied()
            .filter(|r| by_ts(r) >= watermark + 2)
            .collect();
        assert!(!gap_suffix.is_empty());
        let dir = std::env::temp_dir().join(format!("twck-gap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::checkpoint::write_checkpoint(
            &dir,
            &crate::checkpoint::CheckpointDoc {
                watermark,
                window_ns: window.0,
                sanitizer: None,
                registry: None,
                archived: None,
            },
        )
        .unwrap();
        let telemetry = Registry::new();
        let _ = run(1, Some(&dir), &gap_suffix, &telemetry);
        assert!(
            telemetry
                .render()
                .contains("tw_pipeline_recovery_windows_lost 2"),
            "gap not reported:\n{}",
            telemetry.render()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A checkpointed warm engine persists its registry and sanitizer
    /// state: a clean shutdown seals every window into the checkpoint,
    /// and the next start warm-starts its very first window from the
    /// restored posterior instead of the cold bootstrap.
    #[test]
    fn warm_checkpoint_persists_and_restores_registry() {
        let app = two_service_chain(62);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        let dir = std::env::temp_dir().join(format!("twck-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let start = |dir: &std::path::Path| {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            OnlineEngine::start(
                tw,
                OnlineConfig {
                    window: Nanos::from_millis(250),
                    grace: Nanos::from_millis(50),
                    channel_capacity: 1024,
                    warm_start: true,
                    sanitize: Some(crate::sanitize::SanitizeConfig::default()),
                    checkpoint: Some(CheckpointConfig::new(dir)),
                    ..OnlineConfig::default()
                },
            )
        };

        let engine = start(&dir);
        let ingest = engine.ingest_handle();
        for r in &records {
            ingest.send(*r).unwrap();
        }
        drop(ingest);
        let (windows, registry) = engine.shutdown_with_registry();
        let registry = registry.expect("warm engine returns its registry");
        assert!(windows.len() >= 4);

        let doc = crate::checkpoint::load_checkpoint(&dir).expect("final checkpoint written");
        let last = windows.iter().map(|w| w.index).max().unwrap();
        assert_eq!(
            doc.watermark,
            last + 1,
            "clean shutdown seals every flushed window"
        );
        assert!(doc.sanitizer.is_some(), "sanitizer state checkpointed");
        let saved = doc.registry.expect("warm registry checkpointed");
        assert_eq!(saved.rounds(), registry.rounds());
        assert_eq!(saved.len(), registry.len());

        // Restart against the same directory: the restored registry (not
        // the empty bootstrap) seeds the first window. The post-restart
        // traffic is *fresh* (later ids and timestamps) — the restored
        // sanitizer rightly rejects replays of pre-watermark records.
        let engine = start(&dir);
        let ingest = engine.ingest_handle();
        let shift = Nanos::from_secs(10);
        for r in records.iter().take(200) {
            let mut fresh = *r;
            fresh.rpc = tw_model::ids::RpcId(r.rpc.0 + 1_000_000);
            fresh.send_req = Nanos(r.send_req.0 + shift.0);
            fresh.recv_req = Nanos(r.recv_req.0 + shift.0);
            fresh.send_resp = Nanos(r.send_resp.0 + shift.0);
            fresh.recv_resp = Nanos(r.recv_resp.0 + shift.0);
            ingest.send(fresh).unwrap();
        }
        drop(ingest);
        let (windows_b, _) = engine.shutdown_with_registry();
        assert!(!windows_b.is_empty());
        assert!(
            windows_b[0].warm_edges > 0,
            "first window after restore must warm-start from the checkpoint"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Kill-a-stage-mid-window: a stage that panics on one poison record
    /// is restarted by the supervisor, the poison lands in the
    /// dead-letter queue, and every window *not* containing the poison is
    /// byte-identical to the fault-free run — at 1, 2, and 8 shards.
    #[test]
    fn stage_panic_quarantines_poison_and_preserves_other_windows() {
        use tw_model::ids::RpcId;

        let app = two_service_chain(63);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 400.0, Nanos::from_secs(2)));
        let mut records = out.records.clone();
        records.sort_by_key(|r| r.send_req);
        let poison = records[records.len() / 2].rpc;
        let window = Nanos::from_millis(250);

        struct PoisonStage {
            poison: RpcId,
        }
        impl Stage for PoisonStage {
            type In = RpcRecord;
            type Out = RpcRecord;
            fn name(&self) -> &str {
                "poison"
            }
            fn process(&mut self, rec: RpcRecord, _ctx: &StageCtx, out: &mut Emitter<RpcRecord>) {
                assert!(rec.rpc != self.poison, "poison record {:?}", rec.rpc);
                out.emit(rec);
            }
        }

        let run = |shards: usize, poison: Option<RpcId>, telemetry: &Registry| {
            let tw = TraceWeaver::new(call_graph.clone(), Params::default());
            let base = TraceWeaver::new(tw.call_graph().clone(), tw.params().share_threads(shards));
            let metrics = EngineMetrics::new(telemetry);
            let queue = QueueCfg {
                capacity: 1024,
                policy: Backpressure::Block,
            };
            let supervisor = Supervisor::default();
            let dlq = supervisor.dead_letters().clone();
            let (tx, builder) = PipelineBuilder::<RpcRecord>::source(telemetry, queue);
            let pipeline = builder
                .supervised(supervisor)
                .stage(
                    PoisonStage {
                        poison: poison.unwrap_or(RpcId(u64::MAX)),
                    },
                    queue,
                )
                .shard(
                    shards,
                    WindowRouter::new(window, Nanos::from_millis(50)),
                    |i| WindowShard {
                        name: format!("window/{i}"),
                        window,
                        shed: ShedPolicy::default(),
                        ladder: LadderedWeaver::new(base.clone()),
                        metrics: metrics.clone(),
                        open: BTreeMap::new(),
                        last_level: None,
                        warm: None,
                        adaptive: None,
                        sealed: None,
                        trace: None,
                        collect_spans: BTreeMap::new(),
                    },
                    queue,
                )
                .build();
            for r in &records {
                tx.send(*r).unwrap();
            }
            drop(tx);
            (pipeline.shutdown(), dlq)
        };

        for shards in [1usize, 2, 8] {
            let (clean_report, _) = run(shards, None, &Registry::new());
            let clean = clean_report.expect_clean();
            let telemetry = Registry::new();
            let (report, dlq) = run(shards, Some(poison), &telemetry);
            assert!(
                report.is_clean(),
                "one panic must restart, not escalate: {:?}",
                report
                    .failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
            );
            let faulted = report.results;
            assert_eq!(
                clean.len(),
                faulted.len(),
                "windows lost at {shards} shards"
            );
            for (a, b) in clean.iter().zip(&faulted) {
                assert_eq!(a.index, b.index, "window order broken at {shards} shards");
                if a.records.iter().any(|r| r.rpc == poison) {
                    let filtered: Vec<RpcRecord> = a
                        .records
                        .iter()
                        .copied()
                        .filter(|r| r.rpc != poison)
                        .collect();
                    assert!(filtered.len() + 1 == a.records.len());
                    assert_eq!(
                        filtered, b.records,
                        "faulted window must lose exactly the poison record"
                    );
                } else {
                    assert_eq!(
                        a.records, b.records,
                        "unaffected window {} diverged at {shards} shards",
                        a.index
                    );
                    for r in &a.records {
                        assert_eq!(
                            a.reconstruction.mapping.children(r.rpc),
                            b.reconstruction.mapping.children(r.rpc),
                            "unaffected mapping diverged in window {}",
                            a.index
                        );
                    }
                }
            }
            let letters = dlq.snapshot();
            assert_eq!(letters.len(), 1, "exactly one quarantined item");
            assert_eq!(letters[0].stage, "poison");
            assert_eq!(letters[0].reason, "panic");
            assert!(letters[0].item_seq > 0);
            let text = telemetry.render();
            assert!(
                text.contains("tw_pipeline_stage_panics_total{stage=\"poison\"} 1"),
                "{text}"
            );
            assert!(
                text.contains("tw_pipeline_stage_restarts_total{stage=\"poison\"} 1"),
                "{text}"
            );
            assert!(
                text.contains("tw_pipeline_dead_letter_total{reason=\"panic\",stage=\"poison\"} 1"),
                "{text}"
            );
        }
    }
}
