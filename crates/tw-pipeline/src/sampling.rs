//! Tail-based sampling on reconstructed traces (paper §5.3, mode 2).
//!
//! Head-based sampling decides when a request *arrives* and needs trace
//! ids propagated to keep whole trees together — impossible without
//! instrumentation (§6.6). Tail-based sampling decides after the fact:
//! once TraceWeaver has mapped a window, keep a fraction of complete
//! traces (the whole tree for each kept root) and drop the rest.

use tw_core::Reconstruction;
use tw_model::ids::RpcId;
use tw_model::span::{RpcRecord, EXTERNAL};
use tw_stats::sampler::Sampler;

/// Deterministic tail sampler.
#[derive(Debug, Clone)]
pub struct TailSampler {
    rate: f64,
    sampler: Sampler,
}

impl TailSampler {
    /// `rate` in [0, 1]: fraction of traces kept.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        TailSampler {
            rate,
            sampler: Sampler::new(seed),
        }
    }

    /// Sample a reconstructed window: returns the kept records (whole
    /// trees of sampled roots, in input order).
    ///
    /// Roots are the records whose caller is external.
    pub fn sample(
        &mut self,
        records: &[RpcRecord],
        reconstruction: &Reconstruction,
    ) -> Vec<RpcRecord> {
        let roots: Vec<RpcId> = records
            .iter()
            .filter(|r| r.caller == EXTERNAL)
            .map(|r| r.rpc)
            .collect();
        let mut keep: std::collections::HashSet<RpcId> = std::collections::HashSet::new();
        for root in roots {
            if self.sampler.coin(self.rate) {
                let trace = reconstruction.mapping.assemble(root);
                keep.extend(trace.rpcs());
            }
        }
        records
            .iter()
            .filter(|r| keep.contains(&r.rpc))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_core::{Params, TraceWeaver};
    use tw_model::time::Nanos;
    use tw_sim::apps::two_service_chain;
    use tw_sim::{Simulator, Workload};

    fn reconstructed() -> (Vec<RpcRecord>, Reconstruction) {
        let app = two_service_chain(60);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(root, 300.0, Nanos::from_secs(1)));
        let tw = TraceWeaver::new(call_graph, Params::default());
        let rec = tw.reconstruct_records(&out.records);
        (out.records, rec)
    }

    #[test]
    fn rate_zero_keeps_nothing() {
        let (records, rec) = reconstructed();
        let mut s = TailSampler::new(0.0, 1);
        assert!(s.sample(&records, &rec).is_empty());
    }

    #[test]
    fn rate_one_keeps_all_mapped_trees() {
        let (records, rec) = reconstructed();
        let mut s = TailSampler::new(1.0, 1);
        let kept = s.sample(&records, &rec);
        // All roots kept; with correct mappings nearly all records kept.
        let frac = kept.len() as f64 / records.len() as f64;
        assert!(frac > 0.95, "kept fraction {frac}");
    }

    #[test]
    fn intermediate_rate_keeps_whole_trees() {
        let (records, rec) = reconstructed();
        let mut s = TailSampler::new(0.3, 2);
        let kept = s.sample(&records, &rec);
        assert!(!kept.is_empty() && kept.len() < records.len());
        // Every kept non-root record's mapped parent must also be kept:
        // trees are sampled atomically.
        let kept_ids: std::collections::HashSet<RpcId> = kept.iter().map(|r| r.rpc).collect();
        for r in &kept {
            if r.caller != EXTERNAL {
                let has_parent = kept
                    .iter()
                    .any(|p| rec.mapping.children(p.rpc).contains(&r.rpc));
                assert!(
                    has_parent && !kept_ids.is_empty(),
                    "orphan record {:?} in sample",
                    r.rpc
                );
            }
        }
    }

    #[test]
    fn sampling_rate_approximate() {
        let (records, rec) = reconstructed();
        let roots = records.iter().filter(|r| r.caller == EXTERNAL).count();
        let mut s = TailSampler::new(0.5, 3);
        let kept = s.sample(&records, &rec);
        let kept_roots = kept.iter().filter(|r| r.caller == EXTERNAL).count();
        let frac = kept_roots as f64 / roots as f64;
        assert!((frac - 0.5).abs() < 0.15, "root keep fraction {frac}");
    }

    #[test]
    #[should_panic]
    fn invalid_rate_rejected() {
        let _ = TailSampler::new(1.5, 1);
    }
}
