//! Crash-safe checkpointing of online state (DESIGN.md §12).
//!
//! A process crash used to lose everything the online engine had
//! accumulated: the windowing watermark (so a restart re-derived window
//! indices from scratch), the sanitizer's skew/drift filters (so
//! correction restarted cold and mis-corrected until re-convergence),
//! and the warm [`DelayRegistry`] (so reconstruction quality fell back
//! to the bootstrap for many windows). This module periodically
//! snapshots all three into one atomically-replaced file:
//!
//! ```text
//! [ magic "TWCK" | version u32 LE | payload_len u64 LE | crc32 u32 LE | JSON payload ]
//! ```
//!
//! Writes go to a temp file in the same directory, are fsynced, and then
//! renamed over the previous checkpoint — readers observe either the old
//! complete file or the new complete file, never a torn one. On load the
//! header is validated field by field (magic, version, length, CRC32 of
//! the payload) and any mismatch is a *clean* rejection: the engine
//! falls back to a cold start and counts the reason, it never trusts a
//! corrupt checkpoint.
//!
//! Consistency model: the three state sources are sampled near-in-time
//! but not transactionally — the watermark is authoritative (it is what
//! restart resumes from), while sanitizer and registry snapshots may
//! trail it by a bounded publication interval. Both are *estimators*, so
//! staleness degrades correction/warm-start quality marginally; it never
//! produces wrong window membership. Windows sealed after the last
//! checkpoint are lost on crash (bounded by the checkpoint interval) and
//! reported honestly via `tw_pipeline_recovery_windows_lost`.

use crate::sanitize::{SanitizerSnapshot, SanitizerSnapshotSlot};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tw_core::{DelayRegistry, RegistryWatch};
use tw_telemetry::trace::SpanRecorder;
use tw_telemetry::{Counter, Gauge, Registry};

const MAGIC: [u8; 4] = *b"TWCK";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 8 + 4;
/// Checkpoint file name inside the configured directory.
pub const CHECKPOINT_FILE: &str = "online.ckpt";
const CHECKPOINT_TMP: &str = "online.ckpt.tmp";

/// Checkpointing configuration for [`crate::OnlineConfig::checkpoint`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint file (created if missing).
    pub dir: PathBuf,
    /// How often the checkpointer thread writes a snapshot. Bounds the
    /// recovery gap: at most this much sealed progress is lost on crash.
    pub interval: Duration,
    /// The sanitize stage publishes its snapshot every this many
    /// processed records (publication cadence, not write cadence).
    pub snapshot_records: u64,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every second.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            interval: Duration::from_secs(1),
            snapshot_records: 256,
        }
    }
}

/// The serialized checkpoint payload.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckpointDoc {
    /// Global sealed watermark: every window with index < this was
    /// reconstructed and handed to the merge before the checkpoint.
    /// Restart resumes routing at this index.
    pub watermark: u64,
    /// Window length (ns) the watermark was computed under. A restart
    /// with a different window size must not trust the watermark.
    pub window_ns: u64,
    /// Latest published sanitizer state, if the pipeline sanitizes.
    pub sanitizer: Option<SanitizerSnapshot>,
    /// Latest published warm registry, if the engine runs warm.
    pub registry: Option<DelayRegistry>,
    /// Archived-window watermark sampled from the trace archive, if the
    /// engine archives. Older checkpoints (or archive-off runs) simply
    /// omit the key, which deserializes as `None`.
    pub archived: Option<u64>,
}

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// No checkpoint file: first boot, or the directory was wiped.
    Missing,
    /// Filesystem error reading the file.
    Io(std::io::Error),
    /// File does not start with the `TWCK` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// File shorter than the header-declared payload length.
    Truncated,
    /// Payload CRC32 mismatch (torn or bit-rotted write).
    BadCrc,
    /// Payload failed to parse/deserialize.
    BadPayload(String),
}

impl CheckpointError {
    /// Metric label for `tw_pipeline_recovery_cold_starts_total{reason}`.
    pub fn reason(&self) -> &'static str {
        match self {
            CheckpointError::Missing => "missing",
            CheckpointError::Io(_) => "io",
            CheckpointError::BadMagic
            | CheckpointError::BadVersion(_)
            | CheckpointError::Truncated
            | CheckpointError::BadCrc
            | CheckpointError::BadPayload(_) => "corrupt",
        }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing => write!(f, "no checkpoint file"),
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint file"),
            CheckpointError::BadCrc => write!(f, "checkpoint crc mismatch"),
            CheckpointError::BadPayload(e) => write!(f, "bad checkpoint payload: {e}"),
        }
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xffff_ffff
}

/// Serialize and atomically persist a checkpoint into `dir`
/// (write-temp → fsync → rename).
pub fn write_checkpoint(dir: &Path, doc: &CheckpointDoc) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let payload = serde_json::to_string(doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let payload = payload.as_bytes();
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    let tmp = dir.join(CHECKPOINT_TMP);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))
}

/// Load and validate the checkpoint in `dir`. Every failure mode is a
/// typed [`CheckpointError`]; callers fall back to a cold start and
/// count [`CheckpointError::reason`].
pub fn load_checkpoint(dir: &Path) -> Result<CheckpointDoc, CheckpointError> {
    let path = dir.join(CHECKPOINT_FILE);
    let mut file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CheckpointError::Missing),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(CheckpointError::Io)?;
    if bytes.len() < HEADER_LEN {
        return Err(if bytes.get(..4).is_some_and(|m| m != MAGIC) {
            CheckpointError::BadMagic
        } else {
            CheckpointError::Truncated
        });
    }
    if bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(CheckpointError::Truncated);
    }
    if crc32(payload) != crc {
        return Err(CheckpointError::BadCrc);
    }
    let text =
        std::str::from_utf8(payload).map_err(|e| CheckpointError::BadPayload(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| CheckpointError::BadPayload(e.to_string()))
}

/// Registry handles for the `tw_pipeline_recovery_*` /
/// `tw_pipeline_checkpoint_*` families. Registered as soon as
/// checkpointing is configured, so a healthy run still exports the
/// families at zero.
#[derive(Debug, Clone)]
pub struct RecoveryMetrics {
    /// `tw_pipeline_recovery_restores_total`
    pub restores: Counter,
    /// `tw_pipeline_recovery_cold_starts_total{reason}`
    pub cold_missing: Counter,
    pub cold_corrupt: Counter,
    pub cold_io: Counter,
    /// `tw_pipeline_recovery_windows_lost`
    pub windows_lost: Gauge,
    /// `tw_pipeline_recovery_watermark`
    pub watermark: Gauge,
    /// `tw_pipeline_checkpoint_writes_total`
    pub writes: Counter,
    /// `tw_pipeline_checkpoint_errors_total`
    pub write_errors: Counter,
}

impl RecoveryMetrics {
    pub fn new(registry: &Registry) -> Self {
        let cold = |reason: &str| {
            registry.counter_with(
                "tw_pipeline_recovery_cold_starts_total",
                "Engine starts that could not restore a checkpoint, by reason.",
                &[("reason", reason)],
            )
        };
        RecoveryMetrics {
            restores: registry.counter(
                "tw_pipeline_recovery_restores_total",
                "Engine starts that restored online state from a checkpoint.",
            ),
            cold_missing: cold("missing"),
            cold_corrupt: cold("corrupt"),
            cold_io: cold("io"),
            windows_lost: registry.gauge(
                "tw_pipeline_recovery_windows_lost",
                "Recovery gap of the most recent restore: window indices between the restored watermark and the first live record (bounded by the checkpoint interval).",
            ),
            watermark: registry.gauge(
                "tw_pipeline_recovery_watermark",
                "Sealed window watermark restored from (or written to) the checkpoint.",
            ),
            writes: registry.counter(
                "tw_pipeline_checkpoint_writes_total",
                "Checkpoint files atomically written.",
            ),
            write_errors: registry.counter(
                "tw_pipeline_checkpoint_errors_total",
                "Checkpoint writes that failed (the previous checkpoint stays intact).",
            ),
        }
    }

    /// Count one failed restore under its reason label.
    pub fn count_cold_start(&self, err: &CheckpointError) {
        match err.reason() {
            "missing" => self.cold_missing.inc(),
            "io" => self.cold_io.inc(),
            _ => self.cold_corrupt.inc(),
        }
    }
}

/// Live handles the checkpointer samples: per-shard sealed watermarks
/// (each shard stores `mark + 1` after processing a cut; the global
/// watermark is the minimum), the sanitizer's published snapshot, and
/// the warm registry watch. Cloning shares the underlying state.
#[derive(Clone)]
pub struct CheckpointSources {
    pub sealed: Vec<Arc<AtomicU64>>,
    pub window_ns: u64,
    pub sanitizer: SanitizerSnapshotSlot,
    pub registry: RegistryWatch,
    /// Trace-archive durable watermark, when the engine archives.
    pub archive: Option<Arc<AtomicU64>>,
}

impl CheckpointSources {
    pub fn new(shards: usize, window_ns: u64, start_watermark: u64) -> Self {
        CheckpointSources {
            sealed: (0..shards.max(1))
                .map(|_| Arc::new(AtomicU64::new(start_watermark)))
                .collect(),
            window_ns,
            sanitizer: SanitizerSnapshotSlot::default(),
            registry: RegistryWatch::new(),
            archive: None,
        }
    }

    /// Global sealed watermark: the minimum over per-shard marks (every
    /// shard observes every cut, so the slowest shard bounds what is
    /// safely sealed everywhere).
    pub fn watermark(&self) -> u64 {
        self.sealed
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }

    /// Assemble the current checkpoint payload.
    pub fn doc(&self) -> CheckpointDoc {
        CheckpointDoc {
            watermark: self.watermark(),
            window_ns: self.window_ns,
            sanitizer: self.sanitizer.lock().clone(),
            registry: self.registry.latest(),
            archived: self.archive.as_ref().map(|w| w.load(Ordering::Acquire)),
        }
    }
}

/// The background checkpoint writer: samples [`CheckpointSources`] every
/// interval and atomically replaces the checkpoint file. Stop with
/// [`stop_and_flush`](Checkpointer::stop_and_flush), which writes one
/// final checkpoint after the pipeline has drained (so a clean shutdown
/// resumes past everything).
pub struct Checkpointer {
    dir: PathBuf,
    sources: CheckpointSources,
    metrics: RecoveryMetrics,
    recorder: Option<SpanRecorder>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Checkpointer {
    pub fn spawn(
        cfg: &CheckpointConfig,
        sources: CheckpointSources,
        metrics: RecoveryMetrics,
        recorder: Option<SpanRecorder>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let dir = cfg.dir.clone();
            let interval = cfg.interval.max(Duration::from_millis(10));
            let sources = sources.clone();
            let metrics = metrics.clone();
            let recorder = recorder.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("tw-checkpoint".into())
                .spawn(move || {
                    let mut last_watermark = None;
                    while !stop.load(Ordering::Acquire) {
                        std::thread::park_timeout(interval);
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let doc = sources.doc();
                        // Skip redundant writes while the stream is idle
                        // at the same watermark.
                        if last_watermark == Some(doc.watermark) {
                            continue;
                        }
                        last_watermark = Some(doc.watermark);
                        write_doc(&dir, &doc, &metrics, recorder.as_ref());
                    }
                })
                .expect("spawn checkpoint thread")
        };
        Checkpointer {
            dir: cfg.dir.clone(),
            sources,
            metrics,
            recorder,
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the writer thread and persist one final checkpoint from the
    /// current (post-drain) state.
    pub fn stop_and_flush(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
        write_doc(
            &self.dir,
            &self.sources.doc(),
            &self.metrics,
            self.recorder.as_ref(),
        );
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

fn write_doc(
    dir: &Path,
    doc: &CheckpointDoc,
    metrics: &RecoveryMetrics,
    recorder: Option<&SpanRecorder>,
) {
    match write_checkpoint(dir, doc) {
        Ok(()) => {
            metrics.writes.inc();
            metrics.watermark.set(doc.watermark as f64);
            if let Some(rec) = recorder {
                rec.event_newest(format!("checkpoint written (watermark {})", doc.watermark));
            }
        }
        Err(e) => {
            metrics.write_errors.inc();
            eprintln!("tw-checkpoint: write failed: {e}");
            if let Some(rec) = recorder {
                rec.event_newest(format!("checkpoint write failed: {e}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("twck-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let doc = CheckpointDoc {
            watermark: 42,
            window_ns: 1_000_000_000,
            sanitizer: Some(SanitizerSnapshot {
                watermark: 77,
                records_seen: 9,
                ..SanitizerSnapshot::default()
            }),
            registry: None,
            archived: Some(40),
        };
        write_checkpoint(&dir, &doc).unwrap();
        let loaded = load_checkpoint(&dir).unwrap();
        assert_eq!(loaded.watermark, 42);
        assert_eq!(loaded.archived, Some(40));
        assert_eq!(loaded.window_ns, 1_000_000_000);
        let snap = loaded.sanitizer.unwrap();
        assert_eq!(snap.watermark, 77);
        assert_eq!(snap.records_seen, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_checkpoints_rejected_cleanly() {
        let dir = std::env::temp_dir().join(format!("twck-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            load_checkpoint(&dir),
            Err(CheckpointError::Missing)
        ));

        let doc = CheckpointDoc {
            watermark: 7,
            window_ns: 1,
            sanitizer: None,
            registry: None,
            archived: None,
        };
        write_checkpoint(&dir, &doc).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let good = std::fs::read(&path).unwrap();

        // Flip a payload bit: CRC must catch it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = load_checkpoint(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::BadCrc), "got {err}");
        assert_eq!(err.reason(), "corrupt");

        // Truncate mid-payload.
        std::fs::write(&path, &good[..good.len() - 4]).unwrap();
        assert!(matches!(
            load_checkpoint(&dir),
            Err(CheckpointError::Truncated)
        ));

        // Wrong magic.
        let mut wrong = good.clone();
        wrong[0] = b'X';
        std::fs::write(&path, &wrong).unwrap();
        assert!(matches!(
            load_checkpoint(&dir),
            Err(CheckpointError::BadMagic)
        ));

        // Future version.
        let mut future = good;
        future[4] = 99;
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            load_checkpoint(&dir),
            Err(CheckpointError::BadVersion(99))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sources_watermark_is_min_over_shards() {
        let sources = CheckpointSources::new(3, 1_000, 5);
        assert_eq!(sources.watermark(), 5);
        sources.sealed[0].store(9, Ordering::Release);
        sources.sealed[1].store(7, Ordering::Release);
        assert_eq!(sources.watermark(), 5, "slowest shard bounds the seal");
        sources.sealed[2].store(8, Ordering::Release);
        assert_eq!(sources.watermark(), 7);
    }
}
