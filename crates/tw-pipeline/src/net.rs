//! TCP span transport: capture agents export length-prefixed span frames
//! (`tw_capture::wire`) over TCP to an ingestion server that feeds a
//! reconstruction sink.
//!
//! This is the wire path of the paper's online deployment (§5.3): eBPF
//! agents on application nodes ship spans to a running TraceWeaver
//! instance. The server is a plain blocking accept loop with one thread
//! per connection — span export is a low-fan-in workload (one agent per
//! node), so thread-per-connection is the robust, simple choice.

use crate::online::{OnlineConfig, OnlineEngine};
use crossbeam::channel::Sender;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tw_capture::wire::{encode_records, FrameDecoder};
use tw_core::TraceWeaver;
use tw_model::span::RpcRecord;
use tw_telemetry::{Counter, Registry};

/// Consecutive decode failures tolerated on one connection before the
/// server stops resynchronizing and drops it: a stream that keeps failing
/// this many times in a row is garbage, not a glitch, and scanning it
/// byte by byte forever would burn a thread on an adversarial client.
pub const MAX_CONSECUTIVE_DECODE_ERRORS: u32 = 32;

/// Registry-backed ingestion counters, shared between the server handle
/// and connection threads. [`IngestStats`] snapshots are views over these
/// series (DESIGN.md §10).
#[derive(Debug, Clone)]
struct IngestMetrics {
    connections: Counter,
    connections_dropped: Counter,
    frames: Counter,
    decode_errors: Counter,
    bytes_discarded: Counter,
}

impl IngestMetrics {
    fn new(registry: &Registry) -> Self {
        IngestMetrics {
            connections: registry.counter(
                "tw_ingest_connections_total",
                "Capture-agent TCP connections served (including ones later dropped).",
            ),
            connections_dropped: registry.counter(
                "tw_ingest_connections_dropped_total",
                "Connections dropped after consecutive decode failures exhausted resync.",
            ),
            frames: registry.counter(
                "tw_ingest_frames_total",
                "Wire frames decoded into records and forwarded to the pipeline.",
            ),
            decode_errors: registry.counter(
                "tw_ingest_decode_errors_total",
                "Individual frame decode failures (the stream resynchronizes and survives).",
            ),
            bytes_discarded: registry.counter(
                "tw_ingest_bytes_discarded_total",
                "Bytes consumed by failed decodes or abandoned when a connection dropped.",
            ),
        }
    }
}

/// Point-in-time snapshot of a server's ingestion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Connections served (including ones that later failed to decode).
    pub connections: u64,
    /// Connections dropped after [`MAX_CONSECUTIVE_DECODE_ERRORS`]
    /// failures in a row exhausted resynchronization.
    pub connections_dropped: u64,
    /// Individual frame decode failures. A connection survives a failure
    /// (the decoder resynchronizes and scans for the next frame
    /// boundary) until the consecutive-failure limit is hit.
    pub decode_errors: u64,
    /// Bytes skipped or consumed by failed decodes, plus anything still
    /// buffered when a connection is dropped. Bytes the client had not
    /// yet transmitted at drop time are not observable and not counted.
    pub bytes_discarded: u64,
}

/// A running span-ingestion server.
///
/// Incoming frames are decoded and forwarded to the sink channel (e.g.
/// an [`crate::OnlineEngine`]'s ingest handle). Malformed streams close
/// their connection; other connections are unaffected. [`stats`]
/// (IngestServer::stats) reports how many streams failed and how much
/// data they took with them.
pub struct IngestServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    metrics: IngestMetrics,
}

impl IngestServer {
    /// Bind and start accepting. Use `"127.0.0.1:0"` to pick a free port.
    ///
    /// Counters go to a private registry; use [`bind_in`]
    /// (IngestServer::bind_in) to share one with the rest of a pipeline
    /// (and a [`MetricsServer`] scrape endpoint).
    pub fn bind(addr: &str, sink: Sender<RpcRecord>) -> std::io::Result<IngestServer> {
        Self::bind_in(addr, sink, &Registry::new())
    }

    /// [`bind`](IngestServer::bind) with an explicit telemetry registry:
    /// the `tw_ingest_*` series land there.
    pub fn bind_in(
        addr: &str,
        sink: Sender<RpcRecord>,
        registry: &Registry,
    ) -> std::io::Result<IngestServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let stats = IngestMetrics::new(registry);
        let stats2 = stats.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            let serve = |stream: TcpStream, workers: &mut Vec<JoinHandle<()>>| {
                let sink = sink.clone();
                let stats = stats2.clone();
                workers.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, sink, &stats);
                }));
            };
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    // Drain the accept backlog before exiting: exports
                    // that connected before shutdown may still be queued
                    // behind the wake-up connection (which carries no
                    // frames and EOFs immediately — serving it is
                    // harmless). This keeps the shutdown contract: every
                    // connection established before `shutdown()` is
                    // served to EOF.
                    if let Ok(stream) = conn {
                        serve(stream, &mut workers);
                    }
                    let _ = listener.set_nonblocking(true);
                    for conn in listener.incoming() {
                        match conn {
                            Ok(stream) => {
                                let _ = stream.set_nonblocking(false);
                                serve(stream, &mut workers);
                            }
                            Err(_) => break, // WouldBlock: backlog empty
                        }
                    }
                    break;
                }
                match conn {
                    Ok(stream) => serve(stream, &mut workers),
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(IngestServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            metrics: stats,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the ingestion counters. Counters update as connection
    /// threads make progress, so a snapshot taken while a stream is
    /// mid-failure may not reflect it yet; after [`shutdown`]
    /// (IngestServer::shutdown) the counts are final (but the handle is
    /// consumed — snapshot first if you need post-drain numbers, or poll).
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            connections: self.metrics.connections.get(),
            connections_dropped: self.metrics.connections_dropped.get(),
            decode_errors: self.metrics.decode_errors.get(),
            bytes_discarded: self.metrics.bytes_discarded.get(),
        }
    }

    /// Stop accepting and wait for in-flight connections to drain.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Decode one connection's frame stream into the sink until EOF.
///
/// A decode failure no longer kills the connection outright: the decoder
/// resynchronizes (skipping a byte when the failed parse consumed
/// nothing, e.g. a corrupt length prefix) and keeps scanning for the
/// next frame boundary, so one mangled frame costs one frame, not the
/// whole stream. Only [`MAX_CONSECUTIVE_DECODE_ERRORS`] failures in a
/// row — a stream that is garbage, not glitched — drop the connection.
/// The frame length itself is bounded by `tw_capture::wire::MAX_FRAME`,
/// so a corrupt prefix can never trigger a huge allocation.
fn serve_connection(
    mut stream: TcpStream,
    sink: Sender<RpcRecord>,
    stats: &IngestMetrics,
) -> std::io::Result<()> {
    stats.connections.inc();
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut consecutive_errors: u32 = 0;
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // clean EOF
        }
        decoder.feed(&buf[..n]);
        loop {
            let pending_before = decoder.pending_bytes();
            match decoder.next_record() {
                Ok(Some(rec)) => {
                    consecutive_errors = 0;
                    stats.frames.inc();
                    if sink.send(rec).is_err() {
                        return Ok(()); // sink closed: drop the rest
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    stats.decode_errors.inc();
                    consecutive_errors += 1;
                    if consecutive_errors >= MAX_CONSECUTIVE_DECODE_ERRORS {
                        // Still-buffered bytes are lost with the
                        // connection; count them so operators can see
                        // how much data a misbehaving agent is costing.
                        stats.bytes_discarded.add(decoder.pending_bytes() as u64);
                        stats.connections_dropped.inc();
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("dropping connection after {consecutive_errors} consecutive wire errors: {e}"),
                        ));
                    }
                    // Resynchronize: bytes the failed parse consumed are
                    // gone either way; if it consumed nothing (corrupt
                    // length prefix), slide one byte to search for the
                    // next boundary.
                    let mut discarded = (pending_before - decoder.pending_bytes()) as u64;
                    if discarded == 0 {
                        discarded = decoder.resync() as u64;
                    }
                    stats.bytes_discarded.add(discarded);
                }
            }
        }
    }
}

/// The full online deployment topology (§5.3) in one call: start an
/// [`OnlineEngine`] (a supervised staged pipeline, DESIGN.md §11) and
/// bind an [`IngestServer`] as its source, so capture agents export wire
/// frames straight into sharded windowed reconstruction.
/// `config.shards` (or legacy `config.threads`) sets how many window
/// shards reconstruct concurrently; shut down the server before the
/// engine so in-flight connections drain into the final windows.
pub fn serve_online(
    addr: &str,
    tw: TraceWeaver,
    config: OnlineConfig,
) -> std::io::Result<(IngestServer, OnlineEngine)> {
    let registry = config.telemetry.clone();
    let engine = OnlineEngine::start(tw, config);
    let server = IngestServer::bind_in(addr, engine.ingest_handle(), &registry)?;
    Ok((server, engine))
}

/// [`serve_online`] with a [`SanitizeStage`](crate::SanitizeStage)
/// composed between the ingest source and the window router, inside the
/// engine's supervised graph: decoded records are deduplicated,
/// causality-checked, skew-corrected and late-filtered before they reach
/// windowing (DESIGN.md §9). Shut down the server first, then the engine
/// — the engine's ordered shutdown drains the sanitizer into the window
/// shards before they flush. Read the sanitizer's final counters with
/// [`OnlineEngine::sanitize_stats`].
pub fn serve_online_sanitized(
    addr: &str,
    tw: TraceWeaver,
    mut config: OnlineConfig,
    sanitize: crate::SanitizeConfig,
) -> std::io::Result<(IngestServer, OnlineEngine)> {
    config.sanitize = Some(sanitize);
    serve_online(addr, tw, config)
}

/// Retry policy for [`export_records`]: bounded exponential backoff with
/// deterministic jitter on transient transport failures (connect refusal
/// while the ingest server restarts, `WouldBlock`/`Interrupted` mid
/// write). The jitter is a hash of the attempt number and target address
/// — reproducible run to run, yet desynchronized across agents exporting
/// to the same server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportRetry {
    /// Total connect+write attempts (clamped to at least 1).
    pub attempts: u32,
    /// Backoff before attempt *n+1* starts at `base · 2ⁿ⁻¹`…
    pub backoff_base: std::time::Duration,
    /// …and is capped here (before jitter of up to +25%).
    pub backoff_max: std::time::Duration,
}

impl Default for ExportRetry {
    fn default() -> Self {
        ExportRetry {
            attempts: 5,
            backoff_base: std::time::Duration::from_millis(20),
            backoff_max: std::time::Duration::from_secs(1),
        }
    }
}

impl ExportRetry {
    /// A single attempt, no retries — the pre-retry behavior.
    pub fn none() -> Self {
        ExportRetry {
            attempts: 1,
            ..ExportRetry::default()
        }
    }

    /// Backoff before attempt `n + 1` (1-based `n`), jittered.
    fn backoff(&self, n: u32, addr: SocketAddr) -> std::time::Duration {
        let exp = n.saturating_sub(1).min(20);
        let nominal = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_max);
        // splitmix64 over (attempt, port): deterministic per agent+try.
        let mut z =
            ((u64::from(n) << 32) | u64::from(addr.port())).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        nominal + nominal.mul_f64((z % 256) as f64 / 1024.0)
    }
}

/// Export telemetry on [`tw_telemetry::global()`] (the exporter runs on
/// the agent side, outside any pipeline registry).
struct ExportMetrics {
    batches: Counter,
    retries: Counter,
    failures: Counter,
}

fn export_metrics() -> &'static ExportMetrics {
    static METRICS: std::sync::OnceLock<ExportMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = tw_telemetry::global();
        ExportMetrics {
            batches: registry.counter(
                "tw_capture_export_batches_total",
                "Record batches successfully exported to an ingest server.",
            ),
            retries: registry.counter(
                "tw_capture_export_retries_total",
                "Export attempts retried after a transient transport failure.",
            ),
            failures: registry.counter(
                "tw_capture_export_failures_total",
                "Export batches abandoned after exhausting the retry budget.",
            ),
        }
    })
}

/// Transient failures worth retrying: the server not (yet) accepting, or
/// a non-blocking/interrupted write. Anything else (e.g. permission
/// errors) fails fast.
fn retryable(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::NotConnected
    )
}

/// Client side: connect and export a batch of records as wire frames,
/// retrying transient failures under [`ExportRetry::default`]. Use
/// [`export_records_with`] to tune or disable the retry budget.
pub fn export_records(addr: SocketAddr, records: &[RpcRecord]) -> std::io::Result<()> {
    export_records_with(addr, records, ExportRetry::default())
}

/// [`export_records`] with an explicit retry policy. Each attempt is a
/// fresh connect+write (frames are encoded once); attempts are counted in
/// `tw_capture_export_*` on the global registry.
pub fn export_records_with(
    addr: SocketAddr,
    records: &[RpcRecord],
    retry: ExportRetry,
) -> std::io::Result<()> {
    let metrics = export_metrics();
    let frames = encode_records(records);
    let attempts = retry.attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = TcpStream::connect(addr).and_then(|mut stream| {
            stream.write_all(&frames)?;
            stream.flush()
        });
        match result {
            Ok(()) => {
                metrics.batches.inc();
                return Ok(());
            }
            Err(err) if attempt < attempts && retryable(&err) => {
                metrics.retries.inc();
                std::thread::sleep(retry.backoff(attempt, addr));
            }
            Err(err) => {
                metrics.failures.inc();
                return Err(err);
            }
        }
    }
}

/// A minimal HTTP scrape endpoint serving `GET /metrics` in Prometheus
/// text exposition format v0.0.4.
///
/// Hand-rolled on a blocking accept loop, like [`IngestServer`]: scrapes
/// are rare and tiny, so one connection at a time with a short socket
/// timeout is robust and dependency-free. The served document is
/// [`Registry::render_multi`] over `sources` — pass the pipeline's
/// registry plus [`tw_telemetry::global()`] to cover all five stages
/// (ingest, sanitize, engine, core task, solver) in one scrape.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Liveness/readiness/introspection state served next to `/metrics`
/// (DESIGN.md §12). Clone it into the process that builds the pipeline
/// and flip [`set_ready`](ServeHealth::set_ready) once the graph is up
/// and any checkpoint restore has finished; `/readyz` answers 503 until
/// then. Attach the supervised pipeline's [`DeadLetterQueue`] to make
/// quarantined records inspectable at `/deadletters`.
#[derive(Clone, Default)]
pub struct ServeHealth {
    ready: Arc<AtomicBool>,
    dead_letters: Arc<parking_lot::Mutex<Option<crate::supervise::DeadLetterQueue>>>,
    spans: Arc<parking_lot::Mutex<Option<tw_telemetry::trace::SpanRecorder>>>,
    archive: Arc<parking_lot::Mutex<Option<Arc<tw_store::TraceArchive>>>>,
}

impl ServeHealth {
    /// Not-ready state with no dead-letter queue attached.
    pub fn new() -> Self {
        ServeHealth::default()
    }

    /// Expose `queue` at `GET /deadletters`. Callable before or after
    /// the server binds (the pipeline — and its queue — is typically
    /// built while `/readyz` still answers 503).
    pub fn attach_dead_letters(&self, queue: crate::supervise::DeadLetterQueue) {
        *self.dead_letters.lock() = Some(queue);
    }

    /// Expose `recorder`'s span trees at `GET /spans` (recent sealed
    /// windows plus still-active ones, as JSON). Exemplars on
    /// `/metrics` carry `span_id` labels that resolve here.
    pub fn attach_spans(&self, recorder: tw_telemetry::trace::SpanRecorder) {
        *self.spans.lock() = Some(recorder);
    }

    /// Expose `archive` at `GET /traces` (stored reconstructed traces as
    /// JSON, filterable by `window`/`service`/`op`/`min_latency_ms`/
    /// `from_ms`/`to_ms`/`limit` query parameters). The `window_id`
    /// exemplar labels on `/metrics` resolve here via `?window=`.
    pub fn attach_archive(&self, archive: Arc<tw_store::TraceArchive>) {
        *self.archive.lock() = Some(archive);
    }

    /// Flip `/readyz` to 200: pipeline built, checkpoint restored.
    pub fn set_ready(&self) {
        self.ready.store(true, Ordering::SeqCst);
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst)
    }
}

impl MetricsServer {
    /// Bind and start serving. Use `"127.0.0.1:0"` to pick a free port.
    /// The server reports ready immediately; use [`bind_with`]
    /// (MetricsServer::bind_with) when readiness is gated on startup
    /// work.
    pub fn bind(addr: &str, sources: Vec<Registry>) -> std::io::Result<MetricsServer> {
        let health = ServeHealth::new();
        health.set_ready();
        MetricsServer::bind_with(addr, sources, health)
    }

    /// [`bind`](MetricsServer::bind) with explicit [`ServeHealth`]:
    /// `/healthz` answers 200 as soon as the accept loop runs, `/readyz`
    /// answers 503 until [`ServeHealth::set_ready`], and `/deadletters`
    /// serves the attached quarantine queue as JSON.
    pub fn bind_with(
        addr: &str,
        sources: Vec<Registry>,
        health: ServeHealth,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = serve_scrape(stream, &sources, &health);
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the accept loop
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Answer one HTTP request on `stream`: `GET /metrics` gets the rendered
/// exposition, `/healthz`/`/readyz` the liveness/readiness probes,
/// `/deadletters` the quarantine queue as JSON, anything else a 404.
fn serve_scrape(
    mut stream: TcpStream,
    sources: &[Registry],
    health: &ServeHealth,
) -> std::io::Result<()> {
    // Read the request head (we never need a body; 4 KiB bounds it).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 4096 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) =
        if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
            let refs: Vec<&Registry> = sources.iter().collect();
            // When any histogram carries exemplars, serve the OpenMetrics
            // exposition (exemplar syntax is not valid in the v0.0.4 text
            // format); plain registries keep the classic content type so
            // pre-OpenMetrics scrapers are unaffected.
            if tw_telemetry::snapshot_has_exemplars(&Registry::merged_snapshot(&refs)) {
                (
                    "200 OK",
                    "application/openmetrics-text; version=1.0.0; charset=utf-8",
                    Registry::render_multi_openmetrics(&refs),
                )
            } else {
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    Registry::render_multi(&refs),
                )
            }
        } else if method == "GET" && path == "/spans" {
            match health.spans.lock().as_ref() {
                Some(recorder) => (
                    "200 OK",
                    "application/json; charset=utf-8",
                    recorder.render_json(),
                ),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no span recorder attached\n".to_string(),
                ),
            }
        } else if method == "GET" && (path == "/traces" || path.starts_with("/traces?")) {
            match health.archive.lock().as_ref() {
                Some(archive) => {
                    let query =
                        parse_trace_query(path.split_once('?').map(|x| x.1).unwrap_or(""));
                    let doc = tw_store::TracesDoc {
                        traces: archive.query(&query),
                    };
                    (
                        "200 OK",
                        "application/json; charset=utf-8",
                        serde_json::to_string(&doc)
                            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
                    )
                }
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no trace archive attached\n".to_string(),
                ),
            }
        } else if method == "GET" && path == "/healthz" {
            // Liveness: answering at all means the accept loop is alive.
            ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())
        } else if method == "GET" && path == "/readyz" {
            if health.is_ready() {
                ("200 OK", "text/plain; charset=utf-8", "ready\n".to_string())
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "starting\n".to_string(),
                )
            }
        } else if method == "GET" && path == "/deadletters" {
            match health.dead_letters.lock().as_ref() {
                Some(queue) => (
                    "200 OK",
                    "application/json; charset=utf-8",
                    serde_json::to_string(&queue.snapshot())
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
                ),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "no dead-letter queue attached\n".to_string(),
                ),
            }
        } else {
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            )
        };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Parse `/traces` query parameters into a [`tw_store::TraceQuery`].
/// Unknown keys and unparsable values are ignored (the filter stays
/// `None`/default) — a scrape URL typo widens the result instead of
/// erroring the endpoint.
fn parse_trace_query(raw: &str) -> tw_store::TraceQuery {
    let mut q = tw_store::TraceQuery::default();
    for pair in raw.split('&') {
        let (key, value) = match pair.split_once('=') {
            Some(kv) => kv,
            None => continue,
        };
        match key {
            "window" => q.window = value.parse().ok(),
            "service" => q.service = value.parse().ok(),
            "op" => q.op = value.parse().ok(),
            "min_latency_ms" => {
                q.min_latency_ns = value.parse::<u64>().ok().map(|ms| ms * 1_000_000)
            }
            "from_ms" => q.from_ns = value.parse::<u64>().ok().map(|ms| ms * 1_000_000),
            "to_ms" => q.to_ns = value.parse::<u64>().ok().map(|ms| ms * 1_000_000),
            "limit" => q.limit = value.parse().unwrap_or(0),
            _ => {}
        }
    }
    q
}

/// `GET` one path from a [`MetricsServer`] and return the body. Errors on
/// connect failure or a non-200 status.
fn fetch_path(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!(
            "GET {path} failed: {status}"
        )));
    }
    Ok(body.to_string())
}

/// Scrape a [`MetricsServer`] (or any `/metrics` endpoint) and return the
/// exposition body. Errors on connect failure or a non-200 status.
pub fn fetch_metrics(addr: SocketAddr) -> std::io::Result<String> {
    fetch_path(addr, "/metrics")
}

/// Fetch a [`MetricsServer`]'s `/deadletters` document (the quarantine
/// queue as JSON). Errors if no queue is attached (404).
pub fn fetch_deadletters(addr: SocketAddr) -> std::io::Result<String> {
    fetch_path(addr, "/deadletters")
}

/// Fetch a [`MetricsServer`]'s `/spans` document (recent sealed span
/// trees plus active ones, as JSON). Errors if no recorder is attached.
pub fn fetch_spans(addr: SocketAddr) -> std::io::Result<String> {
    fetch_path(addr, "/spans")
}

/// Query a [`MetricsServer`]'s `/traces` endpoint and return the parsed
/// stored traces. Errors if no archive is attached (404) or the body is
/// not a valid [`tw_store::TracesDoc`].
pub fn fetch_traces(
    addr: SocketAddr,
    query: &tw_store::TraceQuery,
) -> std::io::Result<Vec<tw_store::StoredTrace>> {
    let mut params = Vec::new();
    if let Some(window) = query.window {
        params.push(format!("window={window}"));
    }
    if let Some(service) = query.service {
        params.push(format!("service={service}"));
    }
    if let Some(op) = query.op {
        params.push(format!("op={op}"));
    }
    if let Some(ns) = query.min_latency_ns {
        params.push(format!("min_latency_ms={}", ns / 1_000_000));
    }
    if let Some(ns) = query.from_ns {
        params.push(format!("from_ms={}", ns / 1_000_000));
    }
    if let Some(ns) = query.to_ns {
        params.push(format!("to_ms={}", ns / 1_000_000));
    }
    if query.limit > 0 {
        params.push(format!("limit={}", query.limit));
    }
    let path = if params.is_empty() {
        "/traces".to_string()
    } else {
        format!("/traces?{}", params.join("&"))
    };
    let body = fetch_path(addr, &path)?;
    let doc: tw_store::TracesDoc = serde_json::from_str(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(doc.traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use tw_model::ids::{Endpoint, OperationId, RpcId, ServiceId};
    use tw_model::span::EXTERNAL;
    use tw_model::time::Nanos;

    fn rec(rpc: u64) -> RpcRecord {
        RpcRecord {
            rpc: RpcId(rpc),
            caller: EXTERNAL,
            caller_replica: 0,
            callee: Endpoint::new(ServiceId(1), OperationId(0)),
            callee_replica: 0,
            send_req: Nanos(rpc * 1_000),
            recv_req: Nanos(rpc * 1_000 + 10),
            send_resp: Nanos(rpc * 1_000 + 500),
            recv_resp: Nanos(rpc * 1_000 + 510),
            caller_thread: Some(1),
            callee_thread: Some(2),
        }
    }

    #[test]
    fn single_client_round_trip() {
        let (tx, rx) = unbounded();
        let server = IngestServer::bind("127.0.0.1:0", tx).unwrap();
        let records: Vec<RpcRecord> = (0..100).map(rec).collect();
        export_records(server.local_addr(), &records).unwrap();

        let mut received = Vec::new();
        for _ in 0..records.len() {
            received.push(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap());
        }
        assert_eq!(received, records);
        server.shutdown();
    }

    #[test]
    fn multiple_concurrent_clients() {
        let (tx, rx) = unbounded();
        let server = IngestServer::bind("127.0.0.1:0", tx).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u64)
            .map(|k| {
                std::thread::spawn(move || {
                    let batch: Vec<RpcRecord> = (0..50).map(|i| rec(k * 1_000 + i)).collect();
                    export_records(addr, &batch).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..200 {
            got.push(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap());
        }
        // All records arrive exactly once (order across clients is free).
        let mut ids: Vec<u64> = got.iter().map(|r| r.rpc.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
        server.shutdown();
    }

    #[test]
    fn garbage_stream_dropped_after_consecutive_errors() {
        let (tx, rx) = unbounded();
        let server = IngestServer::bind("127.0.0.1:0", tx).unwrap();
        let addr = server.local_addr();
        // Pure-garbage connection: every window of 0xFF… decodes as an
        // absurd frame length, so resync never finds a boundary and the
        // consecutive-error limit fires.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0xFF; 64]).unwrap();
        }
        // A healthy connection still works afterwards.
        let records: Vec<RpcRecord> = (0..10).map(rec).collect();
        export_records(addr, &records).unwrap();
        let mut received = Vec::new();
        for _ in 0..records.len() {
            received.push(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap());
        }
        assert_eq!(received, records);
        // The garbage stream shows up in the counters (its thread runs
        // concurrently, so poll briefly).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let stats = loop {
            let s = server.stats();
            if s.connections_dropped >= 1 || std::time::Instant::now() >= deadline {
                break s;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert_eq!(stats.connections_dropped, 1, "garbage stream dropped");
        assert_eq!(
            stats.decode_errors, MAX_CONSECUTIVE_DECODE_ERRORS as u64,
            "errors counted up to the drop limit"
        );
        // 31 single-byte resyncs + everything still buffered at drop
        // time; with all 64 bytes buffered that totals the whole stream.
        assert!(
            (MAX_CONSECUTIVE_DECODE_ERRORS as u64..=64).contains(&stats.bytes_discarded),
            "bytes_discarded = {}",
            stats.bytes_discarded
        );
        assert!(stats.connections >= 2, "garbage + healthy connections");
        server.shutdown();
    }

    #[test]
    fn single_corrupt_frame_resyncs_without_dropping_connection() {
        let (tx, rx) = unbounded();
        let server = IngestServer::bind("127.0.0.1:0", tx).unwrap();
        let addr = server.local_addr();
        // One frame with a bad version byte, then healthy frames, all on
        // the SAME connection: the decoder consumes the bad frame, the
        // error is counted, and the stream keeps flowing.
        let records: Vec<RpcRecord> = (0..10).map(rec).collect();
        let mut payload = encode_records(&[rec(999)]).to_vec();
        payload[4] = 77; // corrupt the version byte
        payload.extend_from_slice(&encode_records(&records));
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
        }
        let mut received = Vec::new();
        for _ in 0..records.len() {
            received.push(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap());
        }
        assert_eq!(received, records, "frames after the corrupt one survive");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let stats = loop {
            let s = server.stats();
            if s.decode_errors >= 1 || std::time::Instant::now() >= deadline {
                break s;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.connections_dropped, 0, "connection survived");
        assert!(stats.bytes_discarded >= 4, "bad frame counted as discarded");
        server.shutdown();
    }

    #[test]
    fn healthy_streams_leave_error_counters_at_zero() {
        let (tx, rx) = unbounded();
        let server = IngestServer::bind("127.0.0.1:0", tx).unwrap();
        let records: Vec<RpcRecord> = (0..20).map(rec).collect();
        export_records(server.local_addr(), &records).unwrap();
        for _ in 0..records.len() {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.bytes_discarded, 0);
        server.shutdown();
    }

    #[test]
    fn serve_online_wires_tcp_into_windows() {
        use tw_core::Params;
        use tw_model::time::Nanos as N;
        let app = tw_sim::apps::two_service_chain(54);
        let call_graph = app.config.call_graph();
        let root = app.roots[0];
        let sim = tw_sim::Simulator::new(app.config).unwrap();
        let out = sim.run(&tw_sim::Workload::poisson(root, 200.0, N::from_millis(400)));

        let tw = TraceWeaver::new(call_graph, Params::default());
        let (server, engine) = serve_online(
            "127.0.0.1:0",
            tw,
            crate::online::OnlineConfig {
                window: N::from_millis(100),
                grace: N::from_millis(50),
                channel_capacity: 4_096,
                threads: 2,
                ..crate::online::OnlineConfig::default()
            },
        )
        .unwrap();
        export_records(server.local_addr(), &out.records).unwrap();
        // Server first: its connections must drain into the engine
        // before ingestion closes.
        server.shutdown();
        let windows = engine.shutdown();
        let total: usize = windows.iter().map(|w| w.records.len()).sum();
        assert_eq!(total, out.records.len());
        for pair in windows.windows(2) {
            assert!(pair[0].index < pair[1].index, "windows must emit in order");
        }
    }

    #[test]
    fn shutdown_is_clean_and_idempotent_on_drop() {
        let (tx, _rx) = unbounded();
        let server = IngestServer::bind("127.0.0.1:0", tx).unwrap();
        server.shutdown();
        // Dropping another server without explicit shutdown is also fine.
        let (tx2, _rx2) = unbounded();
        let _server2 = IngestServer::bind("127.0.0.1:0", tx2).unwrap();
    }
}
