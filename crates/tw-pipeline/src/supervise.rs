//! Supervision for the staged pipeline (DESIGN.md §12): panic isolation
//! with `catch_unwind`, per-stage restart policy (bounded exponential
//! backoff over a rolling window, escalate-to-shutdown when exhausted),
//! and a bounded dead-letter queue holding a record of every quarantined
//! input item.
//!
//! Before this module any stage panic unwound its thread and surfaced
//! only at join time, tearing the whole graph down and losing every open
//! window. Now a panicking `process` call quarantines the offending item
//! (the poison pill is *consumed*, never retried), counts it, and the
//! same stage instance resumes on the next item — open-window state
//! survives, so unaffected windows are byte-identical to a fault-free
//! run. Only a stage that keeps panicking faster than its
//! [`RestartPolicy`] allows escalates: it stops consuming, which closes
//! its queues and cascades an ordered shutdown through the graph, and the
//! failure is reported from [`crate::Pipeline::shutdown`] as a
//! [`StageFailure`] instead of a panic.
//!
//! Exported series (all registered per stage at spawn, so the families
//! are present — at zero — even on healthy pipelines):
//!
//! * `tw_pipeline_stage_panics_total{stage}` — panics caught in
//!   `process`/`flush`;
//! * `tw_pipeline_stage_restarts_total{stage}` — times the supervisor
//!   resumed a stage after a panic (after backoff);
//! * `tw_pipeline_dead_letter_total{stage,reason}` — items quarantined to
//!   the dead-letter queue, by reason (`panic`, `flush`, or `evicted`
//!   when the bounded queue dropped its oldest entry to make room).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tw_model::span::RpcRecord;
use tw_telemetry::trace::SpanRecorder;
use tw_telemetry::{Counter, Registry};

/// How a supervisor reacts to a panicking stage: restart with bounded
/// exponential backoff until the budget inside a rolling window is
/// exhausted, then escalate to an ordered shutdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartPolicy {
    /// Restarts allowed within [`restart_window`](Self::restart_window)
    /// before the supervisor escalates. 0 means never restart (every
    /// panic escalates).
    pub max_restarts: u32,
    /// Rolling window the restart budget applies to; panics older than
    /// this no longer count against the budget.
    pub restart_window: Duration,
    /// Backoff before the first restart; doubles per restart within the
    /// window.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 5,
            restart_window: Duration::from_secs(30),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
        }
    }
}

impl RestartPolicy {
    /// Backoff before restart number `n` (1-based): `base * 2^(n-1)`,
    /// capped at `backoff_max`.
    pub fn backoff(&self, n: u32) -> Duration {
        let exp = n.saturating_sub(1).min(20);
        let raw = self.backoff_base.saturating_mul(1u32 << exp);
        raw.min(self.backoff_max)
    }
}

/// One quarantined input item: which stage it poisoned, why, and where in
/// the stage's input stream it sat. The item itself was consumed by the
/// panicking call (stages take ownership), so the record carries
/// provenance, not the payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DeadLetter {
    /// Stage whose `process`/`flush` panicked.
    pub stage: String,
    /// Quarantine reason: `panic` (poison input item) or `flush` (panic
    /// draining buffered state at shutdown).
    pub reason: &'static str,
    /// The panic payload, stringified.
    pub message: String,
    /// 1-based index of the item in the stage's input stream (0 for
    /// flush, which has no input item).
    pub item_seq: u64,
    /// The quarantined record itself, when the poisoned item carried one
    /// (captured by the runner via
    /// [`crate::pipeline::DeadLetterPayload`] before the panicking call
    /// consumed it). `twctl deadletters --resubmit` replays these.
    pub record: Option<RpcRecord>,
    /// Window index the poisoned item belonged to, when known — links the
    /// quarantine to the window's span tree on `GET /spans`.
    pub window: Option<u64>,
}

/// Bounded, shared dead-letter queue. When full, the oldest entry is
/// evicted (and counted) so the newest poison is always inspectable.
/// Cloning shares the same queue.
#[derive(Clone)]
pub struct DeadLetterQueue {
    inner: Arc<Mutex<VecDeque<DeadLetter>>>,
    capacity: usize,
}

impl DeadLetterQueue {
    /// A queue holding at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        DeadLetterQueue {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    /// Append an entry, evicting the oldest when full. Returns true when
    /// an entry was evicted to make room.
    pub fn push(&self, letter: DeadLetter) -> bool {
        let mut q = self.inner.lock();
        let evicted = q.len() >= self.capacity;
        if evicted {
            q.pop_front();
        }
        q.push_back(letter);
        evicted
    }

    /// Snapshot of the queue contents, oldest first.
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been quarantined (or everything was
    /// drained).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for DeadLetterQueue {
    fn default() -> Self {
        DeadLetterQueue::new(256)
    }
}

/// A stage failure surfaced from [`crate::Pipeline::shutdown`]: either a
/// supervisor escalation (restart budget exhausted) or a panic that
/// escaped the supervised loop entirely (runner bug).
#[derive(Debug, Clone)]
pub struct StageFailure {
    /// Stage (or router/merge) name.
    pub stage: String,
    /// Stringified panic payload / escalation summary.
    pub payload: String,
}

impl std::fmt::Display for StageFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage `{}` failed: {}", self.stage, self.payload)
    }
}

/// Pipeline-wide supervision state: the restart policy every stage
/// inherits, the shared dead-letter queue, and the failure log
/// [`crate::Pipeline::shutdown`] drains. Cloning shares all three.
#[derive(Clone)]
pub struct Supervisor {
    policy: RestartPolicy,
    /// Per-stage policy overrides (PR-8 follow-up): stages not listed
    /// inherit `policy`. Shared across clones so overrides registered
    /// before the graph spawns apply to every runner.
    overrides: Arc<Mutex<std::collections::HashMap<String, RestartPolicy>>>,
    dead_letters: DeadLetterQueue,
    failures: Arc<Mutex<Vec<StageFailure>>>,
    recorder: Option<SpanRecorder>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::new(RestartPolicy::default(), DeadLetterQueue::default())
    }
}

impl Supervisor {
    pub fn new(policy: RestartPolicy, dead_letters: DeadLetterQueue) -> Self {
        Supervisor {
            policy,
            overrides: Arc::new(Mutex::new(std::collections::HashMap::new())),
            dead_letters,
            failures: Arc::new(Mutex::new(Vec::new())),
            recorder: None,
        }
    }

    /// Override the restart policy for one stage (exact name match, e.g.
    /// `"sanitize"` or `"window/3"`). Stages without an override keep the
    /// supervisor-wide default, so one flaky stage can escalate fast — or
    /// get extra budget — without touching its neighbors.
    pub fn with_stage_policy(self, stage: &str, policy: RestartPolicy) -> Self {
        self.overrides.lock().insert(stage.to_string(), policy);
        self
    }

    /// The restart policy in force for `stage`: its override, or the
    /// supervisor-wide default.
    pub fn policy_for(&self, stage: &str) -> RestartPolicy {
        self.overrides
            .lock()
            .get(stage)
            .copied()
            .unwrap_or(self.policy)
    }

    /// Attach a self-trace recorder: supervision decisions (restarts,
    /// escalations) become events on the affected window's span tree when
    /// the poison item carries a window, or on the newest sampled window
    /// otherwise.
    pub fn with_recorder(mut self, recorder: SpanRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The shared dead-letter queue (clone to inspect from outside the
    /// pipeline, e.g. `twctl serve`'s `/deadletters` endpoint).
    pub fn dead_letters(&self) -> &DeadLetterQueue {
        &self.dead_letters
    }

    /// Record a failure for [`crate::Pipeline::shutdown`] to surface.
    pub fn record_failure(&self, stage: &str, payload: String) {
        self.failures.lock().push(StageFailure {
            stage: stage.to_string(),
            payload,
        });
    }

    /// Drain the accumulated failures (shutdown path).
    pub fn take_failures(&self) -> Vec<StageFailure> {
        std::mem::take(&mut *self.failures.lock())
    }

    /// Per-stage supervision handle with its metric series registered.
    pub fn for_stage(&self, registry: &Registry, stage: &str) -> StageSupervisor {
        StageSupervisor {
            stage: stage.to_string(),
            policy: self.policy_for(stage),
            dead_letters: self.dead_letters.clone(),
            shared: self.clone(),
            panics: registry.counter_with(
                "tw_pipeline_stage_panics_total",
                "Panics caught inside a stage's process/flush by the supervisor.",
                &[("stage", stage)],
            ),
            restarts: registry.counter_with(
                "tw_pipeline_stage_restarts_total",
                "Times the supervisor resumed a stage after a caught panic.",
                &[("stage", stage)],
            ),
            quarantined: registry.counter_with(
                "tw_pipeline_dead_letter_total",
                "Input items quarantined to the dead-letter queue, by stage and reason.",
                &[("stage", stage), ("reason", "panic")],
            ),
            flush_quarantined: registry.counter_with(
                "tw_pipeline_dead_letter_total",
                "Input items quarantined to the dead-letter queue, by stage and reason.",
                &[("stage", stage), ("reason", "flush")],
            ),
            evicted: registry.counter_with(
                "tw_pipeline_dead_letter_total",
                "Input items quarantined to the dead-letter queue, by stage and reason.",
                &[("stage", stage), ("reason", "evicted")],
            ),
            recent: VecDeque::new(),
        }
    }
}

/// What the supervised run loop should do after a caught panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Resume the same stage instance after sleeping the backoff.
    Restart(Duration),
    /// Budget exhausted: stop consuming, cascade an ordered shutdown.
    Escalate,
}

/// Per-stage supervision state, owned by the stage's runner thread.
pub struct StageSupervisor {
    stage: String,
    policy: RestartPolicy,
    dead_letters: DeadLetterQueue,
    shared: Supervisor,
    panics: Counter,
    restarts: Counter,
    quarantined: Counter,
    flush_quarantined: Counter,
    evicted: Counter,
    recent: VecDeque<Instant>,
}

impl StageSupervisor {
    /// Emit a supervision event onto the self-trace, targeting the
    /// poisoned item's window when known.
    fn trace_event(&self, window: Option<u64>, message: String) {
        let Some(recorder) = &self.shared.recorder else {
            return;
        };
        match window {
            Some(w) => recorder.event(w, None, message),
            None => recorder.event_newest(message),
        }
    }

    /// Handle a panic from `process` on item `item_seq`: quarantine the
    /// item (with whatever payload provenance the runner captured), then
    /// decide restart-or-escalate against the rolling budget.
    pub fn on_panic(
        &mut self,
        message: &str,
        item_seq: u64,
        record: Option<RpcRecord>,
        window: Option<u64>,
    ) -> Verdict {
        self.panics.inc();
        self.quarantined.inc();
        if self.dead_letters.push(DeadLetter {
            stage: self.stage.clone(),
            reason: "panic",
            message: message.to_string(),
            item_seq,
            record,
            window,
        }) {
            self.evicted.inc();
        }
        let now = Instant::now();
        while let Some(front) = self.recent.front() {
            if now.duration_since(*front) > self.policy.restart_window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        if self.recent.len() as u32 >= self.policy.max_restarts {
            self.shared.record_failure(
                &self.stage,
                format!(
                    "escalated after {} restarts within {:?}: {message}",
                    self.recent.len(),
                    self.policy.restart_window
                ),
            );
            self.trace_event(
                window,
                format!("stage `{}` escalated after panic: {message}", self.stage),
            );
            return Verdict::Escalate;
        }
        self.recent.push_back(now);
        self.restarts.inc();
        self.trace_event(
            window,
            format!("stage `{}` restarted after panic: {message}", self.stage),
        );
        Verdict::Restart(self.policy.backoff(self.recent.len() as u32))
    }

    /// Handle a panic from `flush`: quarantine and record, never restart
    /// (flush runs exactly once, at shutdown).
    pub fn on_flush_panic(&mut self, message: &str) {
        self.panics.inc();
        self.flush_quarantined.inc();
        if self.dead_letters.push(DeadLetter {
            stage: self.stage.clone(),
            reason: "flush",
            message: message.to_string(),
            item_seq: 0,
            record: None,
            window: None,
        }) {
            self.evicted.inc();
        }
        self.shared
            .record_failure(&self.stage, format!("flush panicked: {message}"));
    }
}

/// Stringify a panic payload (`&str` and `String` payloads verbatim,
/// anything else opaque).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RestartPolicy {
            max_restarts: 10,
            restart_window: Duration::from_secs(30),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(50),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(50), "capped");
        assert_eq!(p.backoff(20), Duration::from_millis(50), "no overflow");
    }

    #[test]
    fn dead_letter_queue_bounded_with_eviction() {
        let q = DeadLetterQueue::new(2);
        let mk = |seq| DeadLetter {
            stage: "s".into(),
            reason: "panic",
            message: format!("boom {seq}"),
            item_seq: seq,
            record: None,
            window: None,
        };
        assert!(!q.push(mk(1)));
        assert!(!q.push(mk(2)));
        assert!(q.push(mk(3)), "third push evicts the oldest");
        let snap = q.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].item_seq, 2);
        assert_eq!(snap[1].item_seq, 3);
    }

    #[test]
    fn supervisor_escalates_after_budget() {
        let registry = Registry::new();
        let sup = Supervisor::new(
            RestartPolicy {
                max_restarts: 2,
                restart_window: Duration::from_secs(30),
                backoff_base: Duration::from_millis(0),
                backoff_max: Duration::from_millis(0),
            },
            DeadLetterQueue::new(8),
        );
        let mut stage = sup.for_stage(&registry, "flaky");
        assert!(matches!(
            stage.on_panic("boom", 1, None, None),
            Verdict::Restart(_)
        ));
        assert!(matches!(
            stage.on_panic("boom", 2, None, None),
            Verdict::Restart(_)
        ));
        assert_eq!(stage.on_panic("boom", 3, None, None), Verdict::Escalate);
        let failures = sup.take_failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].payload.contains("escalated"));
        assert_eq!(sup.dead_letters().len(), 3, "every poison quarantined");
        let text = registry.render();
        assert!(text.contains("tw_pipeline_stage_panics_total{stage=\"flaky\"} 3"));
        assert!(text.contains("tw_pipeline_stage_restarts_total{stage=\"flaky\"} 2"));
        assert!(text.contains("tw_pipeline_dead_letter_total{reason=\"panic\",stage=\"flaky\"} 3"));
    }

    #[test]
    fn dead_letter_carries_payload_provenance() {
        let registry = Registry::new();
        let sup = Supervisor::default();
        let mut stage = sup.for_stage(&registry, "shard/0");
        use tw_model::ids::{Endpoint, OperationId, RpcId, ServiceId};
        use tw_model::time::Nanos;
        let rec = RpcRecord {
            rpc: RpcId(17),
            caller: ServiceId(1),
            caller_replica: 0,
            callee: Endpoint::new(ServiceId(2), OperationId(0)),
            callee_replica: 0,
            send_req: Nanos(100),
            recv_req: Nanos(110),
            send_resp: Nanos(120),
            recv_resp: Nanos(130),
            caller_thread: None,
            callee_thread: None,
        };
        stage.on_panic("boom", 4, Some(rec), Some(9));
        let snap = sup.dead_letters().snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].window, Some(9));
        assert_eq!(snap[0].record.expect("record captured").rpc, RpcId(17));
        // Serializes with the payload inline for /deadletters + twctl.
        let json = serde_json::to_string(&snap[0]).unwrap();
        assert!(json.contains("\"window\":9"));
        assert!(json.contains("\"recv_resp\":130"));
    }

    #[test]
    fn per_stage_override_escalates_flaky_stage_while_neighbor_restarts() {
        let registry = Registry::new();
        // Default: generous budget with no backoff. Override: "flaky"
        // never restarts — its first panic escalates. The neighbor stage
        // must keep the default budget untouched.
        let sup = Supervisor::new(
            RestartPolicy {
                max_restarts: 5,
                restart_window: Duration::from_secs(30),
                backoff_base: Duration::from_millis(0),
                backoff_max: Duration::from_millis(0),
            },
            DeadLetterQueue::new(8),
        )
        .with_stage_policy(
            "flaky",
            RestartPolicy {
                max_restarts: 0,
                ..RestartPolicy::default()
            },
        );
        assert_eq!(sup.policy_for("flaky").max_restarts, 0);
        assert_eq!(sup.policy_for("steady").max_restarts, 5);

        let mut flaky = sup.for_stage(&registry, "flaky");
        let mut steady = sup.for_stage(&registry, "steady");
        assert_eq!(
            flaky.on_panic("boom", 1, None, None),
            Verdict::Escalate,
            "override escalates on the first panic"
        );
        assert!(
            matches!(steady.on_panic("boom", 1, None, None), Verdict::Restart(_)),
            "neighbor keeps the default restart budget"
        );
        let text = registry.render();
        assert!(text.contains("tw_pipeline_stage_restarts_total{stage=\"steady\"} 1"));
        assert!(text.contains("tw_pipeline_stage_restarts_total{stage=\"flaky\"} 0"));
    }

    #[test]
    fn never_restart_policy_escalates_immediately() {
        let registry = Registry::new();
        let sup = Supervisor::new(
            RestartPolicy {
                max_restarts: 0,
                ..RestartPolicy::default()
            },
            DeadLetterQueue::new(8),
        );
        let mut stage = sup.for_stage(&registry, "fragile");
        assert_eq!(stage.on_panic("boom", 1, None, None), Verdict::Escalate);
    }
}
