//! The staged-pipeline core: a first-class [`Stage`] abstraction, bounded
//! inter-stage queues with an explicit [`Backpressure`] policy, sharded
//! fan-out with a deterministic merge, and a [`PipelineBuilder`] that
//! composes stages into one supervised graph with a single ordered
//! shutdown path (DESIGN.md §11).
//!
//! Before this module the online path was hand-wired: `IngestServer`,
//! the sanitizer thread, and `OnlineEngine` each owned bespoke channels,
//! shutdown logic, and telemetry. Now every hop between stages is the
//! same bounded queue with the same observability:
//!
//! * `tw_pipeline_queue_depth{stage}` — items waiting in the queue that
//!   feeds each stage, sampled at every dequeue;
//! * `tw_pipeline_stage_busy_seconds{stage}` — cumulative wall-clock time
//!   each stage spent inside `process`/`flush` (monotone gauge);
//! * `tw_pipeline_items_total{stage}` — items a stage has consumed;
//! * `tw_pipeline_shed_total{queue}` — items dropped at a full queue
//!   running the [`Backpressure::Shed`] policy (always 0 under
//!   [`Backpressure::Block`], the default).
//!
//! Backpressure is explicit and queue-local: a `Block` queue makes the
//! producer wait (pressure propagates hop by hop back to the TCP ingest
//! socket), a `Shed` queue drops the item and counts it. Nothing is ever
//! dropped silently.
//!
//! Shutdown is ordered and drain-safe: closing the pipeline's entry
//! sender lets each stage drain its input, run [`Stage::flush`], and drop
//! its output sender, cascading end-of-stream downstream. The supervising
//! [`Pipeline::shutdown`] joins stages in topological order while
//! draining the results queue, so a results queue shorter than the
//! remaining output can never deadlock the join (the PR-7 shutdown fix).

use crate::supervise::{
    panic_message, DeadLetterQueue, StageFailure, StageSupervisor, Supervisor, Verdict,
};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::Instant;
use tw_model::span::RpcRecord;
use tw_telemetry::{Counter, Gauge, Registry};

/// Provenance a stream item can lend to the dead-letter queue. The runner
/// captures both hooks *before* `process` consumes the item (an
/// `RpcRecord` is `Copy`, so the capture is a register move, not a
/// serialization), and attaches them to the [`crate::DeadLetter`] only
/// when that call panics — so quarantined items carry the actual payload
/// and window for `twctl deadletters` to print and resubmit, at zero cost
/// on the non-panicking path.
pub trait DeadLetterPayload {
    /// The wire record this item carries, if any.
    fn dead_letter_record(&self) -> Option<RpcRecord> {
        None
    }

    /// The window index this item belongs to, if known.
    fn dead_letter_window(&self) -> Option<u64> {
        None
    }
}

impl DeadLetterPayload for RpcRecord {
    fn dead_letter_record(&self) -> Option<RpcRecord> {
        Some(*self)
    }
}

/// Window-routed records (`(window, record)`) carry both hooks.
impl DeadLetterPayload for (u64, RpcRecord) {
    fn dead_letter_record(&self) -> Option<RpcRecord> {
        Some(self.1)
    }

    fn dead_letter_window(&self) -> Option<u64> {
        Some(self.0)
    }
}

/// Opaque test/demo streams carry no provenance.
impl DeadLetterPayload for u64 {}

/// What happens when a stage emits into a full queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for space: pressure propagates upstream, hop by hop, until it
    /// reaches the source (and, through the TCP window, the capture
    /// agents). Lossless — the default.
    #[default]
    Block,
    /// Drop the item and increment `tw_pipeline_shed_total{queue}`. For
    /// deployments where freshness beats completeness; never silent.
    Shed,
}

/// One bounded inter-stage queue: capacity plus overflow policy.
#[derive(Debug, Clone, Copy)]
pub struct QueueCfg {
    /// Queue capacity (clamped to at least 1).
    pub capacity: usize,
    /// Overflow policy when the queue is full.
    pub policy: Backpressure,
}

impl QueueCfg {
    /// A lossless blocking queue of `capacity` items.
    pub fn block(capacity: usize) -> Self {
        QueueCfg {
            capacity,
            policy: Backpressure::Block,
        }
    }

    /// A load-shedding queue of `capacity` items.
    pub fn shed(capacity: usize) -> Self {
        QueueCfg {
            capacity,
            policy: Backpressure::Shed,
        }
    }
}

/// Per-dequeue context the runner hands a stage: the live depth of the
/// queue feeding it, for load-shedding decisions ([`crate::ShedPolicy`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageCtx {
    /// Items waiting in this stage's input queue when the current item
    /// was dequeued (0 inside [`Stage::flush`]).
    pub queue_depth: usize,
}

/// A pipeline stage: consume items one at a time, emit zero or more
/// downstream. Stages own their state and run on their own thread; the
/// runner handles queueing, telemetry, and shutdown ordering.
pub trait Stage: Send + 'static {
    type In: Send + DeadLetterPayload + 'static;
    type Out: Send + 'static;

    /// Stage name, used as the `stage`/`queue` label on the
    /// `tw_pipeline_*` series and as the thread name.
    fn name(&self) -> &str;

    /// Process one item. Emission is explicit — a filter emits 0..1, a
    /// windower emits whole windows when cuts pass.
    fn process(&mut self, item: Self::In, ctx: &StageCtx, out: &mut Emitter<Self::Out>);

    /// Drain on shutdown: called exactly once, after the input closes and
    /// every queued item was processed. Emit whatever is still buffered —
    /// this is where partially-filled windows flush through
    /// reconstruction instead of being dropped.
    fn flush(&mut self, _ctx: &StageCtx, _out: &mut Emitter<Self::Out>) {}
}

/// A stage's handle on its output queue, enforcing the queue's
/// [`Backpressure`] policy and counting sheds.
pub struct Emitter<T> {
    tx: Sender<T>,
    policy: Backpressure,
    shed: Counter,
    closed: bool,
}

impl<T> Emitter<T> {
    fn new(tx: Sender<T>, policy: Backpressure, shed: Counter) -> Self {
        Emitter {
            tx,
            policy,
            shed,
            closed: false,
        }
    }

    /// Emit one item under the queue's policy. On a closed downstream the
    /// item is dropped and the emitter latches closed (shutdown path).
    pub fn emit(&mut self, item: T) {
        if self.closed {
            return;
        }
        match self.policy {
            Backpressure::Block => {
                if self.tx.send(item).is_err() {
                    self.closed = true;
                }
            }
            Backpressure::Shed => match self.tx.try_send(item) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => self.shed.inc(),
                Err(TrySendError::Disconnected(_)) => self.closed = true,
            },
        }
    }

    /// Emit bypassing the shed policy: always block. For control marks
    /// and loss-intolerant hand-offs (e.g. window-cut broadcasts) that
    /// must survive even on a shedding queue.
    pub fn emit_pressure(&mut self, item: T) {
        if self.closed {
            return;
        }
        if self.tx.send(item).is_err() {
            self.closed = true;
        }
    }

    /// True once the downstream receiver is gone; the stage can stop
    /// doing work whose output has nowhere to go.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Registry handles for one stage's `tw_pipeline_*` series.
#[derive(Debug, Clone)]
struct StageMetrics {
    depth: Gauge,
    busy: Gauge,
    items: Counter,
}

impl StageMetrics {
    fn new(registry: &Registry, stage: &str) -> Self {
        StageMetrics {
            depth: registry.gauge_with(
                "tw_pipeline_queue_depth",
                "Items waiting in the bounded queue feeding each stage, sampled at dequeue.",
                &[("stage", stage)],
            ),
            busy: registry.gauge_with(
                "tw_pipeline_stage_busy_seconds",
                "Cumulative wall-clock seconds each stage spent processing (monotone).",
                &[("stage", stage)],
            ),
            items: registry.counter_with(
                "tw_pipeline_items_total",
                "Items consumed by each stage.",
                &[("stage", stage)],
            ),
        }
    }
}

fn shed_counter(registry: &Registry, queue: &str) -> Counter {
    registry.counter_with(
        "tw_pipeline_shed_total",
        "Items dropped at a full queue under the shed backpressure policy.",
        &[("queue", queue)],
    )
}

/// Run one stage to completion under supervision: drain the input queue
/// with every `process` call fenced by `catch_unwind`, then flush (also
/// fenced). A panic quarantines the consumed item to the dead-letter
/// queue and either resumes the *same* stage instance after backoff —
/// buffered state (open windows, dedup rings) survives, so unaffected
/// output is byte-identical to a fault-free run — or, once the restart
/// budget is spent, escalates: the loop stops consuming, which closes
/// its queues and cascades an ordered shutdown through the graph.
fn run_stage<S: Stage>(
    mut stage: S,
    rx: Receiver<S::In>,
    mut out: Emitter<S::Out>,
    metrics: StageMetrics,
    mut sup: StageSupervisor,
) {
    let mut escalated = false;
    let mut item_seq = 0u64;
    for item in rx.iter() {
        item_seq += 1;
        let ctx = StageCtx {
            queue_depth: rx.len(),
        };
        metrics.depth.set(ctx.queue_depth as f64);
        metrics.items.inc();
        let record = item.dead_letter_record();
        let window = item.dead_letter_window();
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| stage.process(item, &ctx, &mut out)));
        metrics.busy.add(t0.elapsed().as_secs_f64());
        if let Err(payload) = result {
            match sup.on_panic(&panic_message(payload.as_ref()), item_seq, record, window) {
                Verdict::Restart(backoff) => {
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                Verdict::Escalate => {
                    escalated = true;
                    break;
                }
            }
        }
        if out.is_closed() {
            // Downstream is gone: dropping `rx` on return propagates the
            // close upstream, so pressure never deadlocks on a dead tail.
            break;
        }
    }
    if !escalated {
        let t0 = Instant::now();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            stage.flush(&StageCtx::default(), &mut out)
        })) {
            sup.on_flush_panic(&panic_message(payload.as_ref()));
        }
        metrics.busy.add(t0.elapsed().as_secs_f64());
    }
    metrics.depth.set(0.0);
}

fn spawn_stage<S: Stage>(
    stage: S,
    rx: Receiver<S::In>,
    out: Emitter<S::Out>,
    metrics: StageMetrics,
    sup: StageSupervisor,
) -> JoinHandle<()> {
    let name = format!("tw-{}", stage.name());
    std::thread::Builder::new()
        .name(name)
        .spawn(move || run_stage(stage, rx, out, metrics, sup))
        .expect("spawn stage thread")
}

/// Message on a shard queue: a routed item, or a control mark every shard
/// must observe (e.g. "window *k* is closed"). Marks are broadcast with
/// [`Emitter::emit_pressure`], so they survive shedding queues.
#[derive(Debug)]
pub enum ShardMsg<T> {
    Item(T),
    Mark(u64),
}

impl<T: DeadLetterPayload> DeadLetterPayload for ShardMsg<T> {
    fn dead_letter_record(&self) -> Option<RpcRecord> {
        match self {
            ShardMsg::Item(item) => item.dead_letter_record(),
            ShardMsg::Mark(_) => None,
        }
    }

    fn dead_letter_window(&self) -> Option<u64> {
        match self {
            ShardMsg::Item(item) => item.dead_letter_window(),
            ShardMsg::Mark(window) => Some(*window),
        }
    }
}

/// The router in front of a sharded stage: map each input item onto one
/// of N shard queues, optionally broadcasting marks. Runs on its own
/// thread, sequentially over the input stream, so stateful routing (e.g.
/// watermark bookkeeping) stays deterministic in arrival order.
pub trait FanOut: Send + 'static {
    type In: Send + DeadLetterPayload + 'static;
    type Out: Send + 'static;

    /// Router name (labels + thread name).
    fn name(&self) -> &str;

    /// Route one item (send to exactly one shard, typically) and
    /// broadcast any marks its arrival triggers.
    fn route(&mut self, item: Self::In, outs: &mut ShardEmitters<Self::Out>);

    /// Drain on shutdown, before the shard queues close.
    fn flush(&mut self, _outs: &mut ShardEmitters<Self::Out>) {}
}

/// The router's handle on its N shard queues.
pub struct ShardEmitters<T> {
    outs: Vec<Emitter<ShardMsg<T>>>,
}

impl<T> ShardEmitters<T> {
    pub fn shards(&self) -> usize {
        self.outs.len()
    }

    /// Send an item to one shard under that queue's policy.
    pub fn send(&mut self, shard: usize, item: T) {
        self.outs[shard].emit(ShardMsg::Item(item));
    }

    /// Broadcast a control mark to every shard, bypassing shed.
    pub fn broadcast_mark(&mut self, mark: u64) {
        for out in &mut self.outs {
            out.emit_pressure(ShardMsg::Mark(mark));
        }
    }

    /// True once every shard queue's receiver is gone.
    pub fn all_closed(&self) -> bool {
        self.outs.iter().all(Emitter::is_closed)
    }
}

/// Output of a sharded stage: carries a globally unique, per-shard
/// monotone sequence number the merge stage restores global order by.
pub trait Sequenced {
    fn seq(&self) -> u64;
}

/// K-way merge: each shard emits in ascending `seq` order and every seq
/// belongs to exactly one shard, so streaming the minimum head yields the
/// deterministic global order — identical for every shard count.
fn run_merge<T: Sequenced + Send + 'static>(
    ins: Vec<Receiver<T>>,
    mut out: Emitter<T>,
    metrics: StageMetrics,
) {
    let mut heads: Vec<Option<T>> = ins.iter().map(|rx| rx.recv().ok()).collect();
    loop {
        let next = heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|t| (t.seq(), i)))
            .min();
        let Some((_, i)) = next else { break };
        let item = heads[i].take().expect("head present");
        metrics.items.inc();
        let t0 = Instant::now();
        out.emit(item);
        metrics.busy.add(t0.elapsed().as_secs_f64());
        if out.is_closed() {
            return;
        }
        heads[i] = ins[i].recv().ok();
    }
}

/// Composes stages into a supervised graph. Start from
/// [`PipelineBuilder::source`], chain [`stage`](PipelineBuilder::stage)
/// and [`shard`](PipelineBuilder::shard), then
/// [`build`](PipelineBuilder::build). Every hop is a bounded queue with
/// `tw_pipeline_*` telemetry in the builder's registry.
pub struct PipelineBuilder<T: Send + 'static> {
    registry: Registry,
    supervisor: Supervisor,
    stages: Vec<(String, JoinHandle<()>)>,
    tail: Receiver<T>,
}

impl<T: Send + 'static> PipelineBuilder<T> {
    /// Open a pipeline with a source queue: the returned `Sender` is the
    /// entry point (hand it to an `IngestServer`, a capture thread, a
    /// test). Dropping every clone of it initiates the ordered shutdown
    /// cascade. Stages run under a default [`Supervisor`]; install a
    /// custom policy with [`supervised`](Self::supervised) before
    /// appending stages.
    pub fn source(registry: &Registry, queue: QueueCfg) -> (Sender<T>, PipelineBuilder<T>) {
        let (tx, rx) = bounded(queue.capacity.max(1));
        (
            tx,
            PipelineBuilder {
                registry: registry.clone(),
                supervisor: Supervisor::default(),
                stages: Vec::new(),
                tail: rx,
            },
        )
    }

    /// Replace the pipeline's supervisor (restart policy + dead-letter
    /// queue). Applies to stages appended *after* this call, so install
    /// it right after [`source`](Self::source).
    pub fn supervised(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Append a stage fed by the current tail through a bounded queue of
    /// `queue.capacity` with `queue.policy` on its *output* hop.
    pub fn stage<S>(mut self, stage: S, queue: QueueCfg) -> PipelineBuilder<S::Out>
    where
        S: Stage<In = T>,
    {
        let name = stage.name().to_string();
        let (tx, rx) = bounded(queue.capacity.max(1));
        let out = Emitter::new(tx, queue.policy, shed_counter(&self.registry, &name));
        let metrics = StageMetrics::new(&self.registry, &name);
        let sup = self.supervisor.for_stage(&self.registry, &name);
        let handle = spawn_stage(stage, self.tail, out, metrics, sup);
        self.stages.push((name, handle));
        PipelineBuilder {
            registry: self.registry,
            supervisor: self.supervisor,
            stages: self.stages,
            tail: rx,
        }
    }

    /// Append a sharded stage: a router thread fans the stream out over
    /// `shards` parallel instances (built by `make`, one per shard), and
    /// a merge thread restores the deterministic global order of their
    /// [`Sequenced`] outputs. `queue` applies to each shard's input queue
    /// and to the merged output queue.
    pub fn shard<F, S, M>(
        mut self,
        shards: usize,
        router: F,
        mut make: M,
        queue: QueueCfg,
    ) -> PipelineBuilder<S::Out>
    where
        T: DeadLetterPayload,
        F: FanOut<In = T>,
        S: Stage<In = ShardMsg<F::Out>>,
        S::Out: Sequenced,
        M: FnMut(usize) -> S,
    {
        let shards = shards.max(1);
        let router_name = router.name().to_string();

        // Shard input queues + stage threads.
        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_out_rxs = Vec::with_capacity(shards);
        let mut shard_handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let stage = make(i);
            let name = stage.name().to_string();
            let (in_tx, in_rx) = bounded(queue.capacity.max(1));
            let (out_tx, out_rx) = bounded(queue.capacity.max(1));
            let out = Emitter::new(
                out_tx,
                // Shard outputs feed the merge; shedding a sequenced item
                // would stall the k-way merge's order restoration, so this
                // hop always blocks. The shard *input* hop carries the
                // configured policy.
                Backpressure::Block,
                shed_counter(&self.registry, &name),
            );
            let metrics = StageMetrics::new(&self.registry, &name);
            let sup = self.supervisor.for_stage(&self.registry, &name);
            shard_handles.push((name, spawn_stage(stage, in_rx, out, metrics, sup)));
            shard_txs.push(Emitter::new(
                in_tx,
                queue.policy,
                shed_counter(&self.registry, &router_name),
            ));
            shard_out_rxs.push(out_rx);
        }

        // Router thread: consumes the current tail, fans out, supervised
        // like any stage (a poison item panicking `route` is quarantined
        // and the router resumes with its watermark state intact).
        let mut outs = ShardEmitters { outs: shard_txs };
        let router_metrics = StageMetrics::new(&self.registry, &router_name);
        let mut router_sup = self.supervisor.for_stage(&self.registry, &router_name);
        let tail = self.tail;
        let mut router = router;
        let router_handle = std::thread::Builder::new()
            .name(format!("tw-{router_name}"))
            .spawn(move || {
                let mut escalated = false;
                let mut item_seq = 0u64;
                for item in tail.iter() {
                    item_seq += 1;
                    let depth = tail.len();
                    router_metrics.depth.set(depth as f64);
                    router_metrics.items.inc();
                    let record = item.dead_letter_record();
                    let window = item.dead_letter_window();
                    let t0 = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| router.route(item, &mut outs)));
                    router_metrics.busy.add(t0.elapsed().as_secs_f64());
                    if let Err(payload) = result {
                        match router_sup.on_panic(
                            &panic_message(payload.as_ref()),
                            item_seq,
                            record,
                            window,
                        ) {
                            Verdict::Restart(backoff) => {
                                if !backoff.is_zero() {
                                    std::thread::sleep(backoff);
                                }
                            }
                            Verdict::Escalate => {
                                escalated = true;
                                break;
                            }
                        }
                    }
                    if outs.all_closed() {
                        break;
                    }
                }
                if !escalated {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| router.flush(&mut outs)))
                    {
                        router_sup.on_flush_panic(&panic_message(payload.as_ref()));
                    }
                }
                router_metrics.depth.set(0.0);
            })
            .expect("spawn router thread");
        self.stages.push((router_name.clone(), router_handle));
        self.stages.extend(shard_handles);

        // Merge thread: k-way merge by seq into one output queue.
        let merge_name = format!("{router_name}-merge");
        let (merged_tx, merged_rx) = bounded(queue.capacity.max(1));
        let merge_out = Emitter::new(
            merged_tx,
            queue.policy,
            shed_counter(&self.registry, &merge_name),
        );
        let merge_metrics = StageMetrics::new(&self.registry, &merge_name);
        let merge_handle = std::thread::Builder::new()
            .name(format!("tw-{merge_name}"))
            .spawn(move || run_merge(shard_out_rxs, merge_out, merge_metrics))
            .expect("spawn merge thread");
        self.stages.push((merge_name, merge_handle));

        PipelineBuilder {
            registry: self.registry,
            supervisor: self.supervisor,
            stages: self.stages,
            tail: merged_rx,
        }
    }

    /// Seal the graph: the current tail becomes the results queue.
    pub fn build(self) -> Pipeline<T> {
        Pipeline {
            results: self.tail,
            supervisor: self.supervisor,
            stages: self.stages,
        }
    }
}

/// A running pipeline: the results queue plus the supervised stage
/// threads in topological order.
pub struct Pipeline<T> {
    results: Receiver<T>,
    supervisor: Supervisor,
    stages: Vec<(String, JoinHandle<()>)>,
}

impl<T> Pipeline<T> {
    /// The results queue (clone the receiver to consume live).
    pub fn results(&self) -> &Receiver<T> {
        &self.results
    }

    /// Stage names in topological order (sources first).
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The pipeline's dead-letter queue (clone to inspect poison items
    /// live, e.g. from `twctl serve`).
    pub fn dead_letters(&self) -> DeadLetterQueue {
        self.supervisor.dead_letters().clone()
    }

    /// Ordered drain-safe shutdown. Close the entry sender first; then
    /// this joins every stage upstream-to-downstream while continuously
    /// draining the results queue, so in-flight windows flush through
    /// reconstruction and a bounded results queue can never deadlock the
    /// join. Returns everything drained (live-consumed results excluded)
    /// plus every [`StageFailure`] the supervisor recorded — a panic
    /// never propagates out of the join path.
    pub fn shutdown(mut self) -> ShutdownReport<T> {
        let mut results = Vec::new();
        for (name, handle) in self.stages.drain(..) {
            while !handle.is_finished() {
                if let Ok(item) = self
                    .results
                    .recv_timeout(std::time::Duration::from_millis(5))
                {
                    results.push(item);
                }
            }
            if let Err(payload) = handle.join() {
                // A panic that escaped the supervised loop (runner bug or
                // merge-thread panic): report, never re-panic.
                self.supervisor
                    .record_failure(&name, panic_message(payload.as_ref()));
            }
        }
        results.extend(self.results.try_iter());
        ShutdownReport {
            results,
            failures: self.supervisor.take_failures(),
        }
    }
}

/// What [`Pipeline::shutdown`] returns: the drained results plus every
/// stage failure (escalations, flush panics, escaped panics) recorded
/// over the pipeline's lifetime.
#[must_use = "check `failures` (or call `expect_clean`) so stage failures are not silently dropped"]
pub struct ShutdownReport<T> {
    /// Everything drained from the results queue.
    pub results: Vec<T>,
    /// Stage failures, in the order they were recorded.
    pub failures: Vec<StageFailure>,
}

impl<T> ShutdownReport<T> {
    /// True when no stage failed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwrap the results, panicking (in the *caller*, not a `Drop`)
    /// if any stage failed. For tests and callers that treat any stage
    /// failure as fatal.
    pub fn expect_clean(self) -> Vec<T> {
        assert!(
            self.failures.is_empty(),
            "pipeline stages failed: {}",
            self.failures
                .iter()
                .map(StageFailure::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        self.results
    }
}

impl<T> Drop for Pipeline<T> {
    fn drop(&mut self) {
        // Best-effort join: drain results so no stage blocks on a full
        // queue, then wait for the cascade to finish.
        for (_, handle) in self.stages.drain(..) {
            while !handle.is_finished() {
                let _ = self
                    .results
                    .recv_timeout(std::time::Duration::from_millis(5));
            }
            let _ = handle.join();
        }
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) for stable shard
/// routing: the same key maps to the same shard on every run and host.
pub fn shard_hash(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A stage that forwards with a fixed per-item delay.
    struct SlowStage {
        name: String,
        delay: std::time::Duration,
        max_depth_seen: Arc<AtomicUsize>,
    }

    impl Stage for SlowStage {
        type In = u64;
        type Out = u64;
        fn name(&self) -> &str {
            &self.name
        }
        fn process(&mut self, item: u64, ctx: &StageCtx, out: &mut Emitter<u64>) {
            self.max_depth_seen
                .fetch_max(ctx.queue_depth, Ordering::Relaxed);
            std::thread::sleep(self.delay);
            out.emit(item);
        }
    }

    /// Doubler with buffered flush, exercising drain-on-shutdown.
    struct BufferedStage {
        held: Vec<u64>,
    }

    impl Stage for BufferedStage {
        type In = u64;
        type Out = u64;
        fn name(&self) -> &str {
            "buffered"
        }
        fn process(&mut self, item: u64, _ctx: &StageCtx, _out: &mut Emitter<u64>) {
            self.held.push(item);
        }
        fn flush(&mut self, _ctx: &StageCtx, out: &mut Emitter<u64>) {
            for item in self.held.drain(..) {
                out.emit(item * 2);
            }
        }
    }

    #[test]
    fn blocking_queue_bounds_depth_and_loses_nothing() {
        let registry = Registry::new();
        let depth = Arc::new(AtomicUsize::new(0));
        let (tx, builder) = PipelineBuilder::<u64>::source(&registry, QueueCfg::block(4));
        let pipeline = builder
            .stage(
                SlowStage {
                    name: "slow".into(),
                    delay: std::time::Duration::from_micros(200),
                    max_depth_seen: depth.clone(),
                },
                QueueCfg::block(4),
            )
            .build();
        // Producer on its own thread: with every queue bounded at 4, it
        // *will* block on the full source queue until the consumer makes
        // room — the main thread meanwhile drains results via shutdown.
        let producer = std::thread::spawn(move || {
            for i in 0..500u64 {
                tx.send(i).unwrap(); // blocks when the 4-slot queue fills
            }
        });
        let out = pipeline.shutdown().expect_clean();
        producer.join().unwrap();
        assert_eq!(out.len(), 500, "blocking policy loses nothing");
        assert!(
            depth.load(Ordering::Relaxed) <= 4,
            "queue depth bounded by capacity, saw {}",
            depth.load(Ordering::Relaxed)
        );
        let text = registry.render();
        assert!(text.contains("tw_pipeline_shed_total{queue=\"slow\"} 0"));
        assert!(text.contains("tw_pipeline_items_total{stage=\"slow\"} 500"));
    }

    #[test]
    fn shedding_queue_drops_with_counters_instead_of_growing() {
        let registry = Registry::new();
        let depth = Arc::new(AtomicUsize::new(0));
        // Source queue sheds: a fast producer against a slow consumer
        // loses items at the full queue, every loss counted.
        let (tx, builder) = PipelineBuilder::<u64>::source(&registry, QueueCfg::shed(2));
        let pipeline = builder
            .stage(
                SlowStage {
                    name: "slow".into(),
                    delay: std::time::Duration::from_millis(2),
                    max_depth_seen: depth.clone(),
                },
                QueueCfg::block(2),
            )
            .build();
        // The source queue itself is the caller's hop: model shed at the
        // sender with try_send + a counter, as IngestServer would.
        let shed = shed_counter(&registry, "source");
        let mut sent = 0u64;
        for i in 0..200u64 {
            match tx.try_send(i) {
                Ok(()) => sent += 1,
                Err(TrySendError::Full(_)) => shed.inc(),
                Err(TrySendError::Disconnected(_)) => unreachable!(),
            }
        }
        drop(tx);
        let out = pipeline.shutdown().expect_clean();
        assert_eq!(out.len() as u64, sent, "everything admitted is delivered");
        assert!(shed.get() > 0, "fast producer must have shed");
        assert_eq!(sent + shed.get(), 200, "admitted + shed = offered");
        assert!(depth.load(Ordering::Relaxed) <= 2, "queue stayed bounded");
    }

    #[test]
    fn flush_drains_buffered_state_through_shutdown() {
        let registry = Registry::new();
        let (tx, builder) = PipelineBuilder::<u64>::source(&registry, QueueCfg::block(8));
        // Results queue (capacity 2) far smaller than the flushed output:
        // shutdown must drain while joining or it would deadlock.
        let pipeline = builder
            .stage(BufferedStage { held: Vec::new() }, QueueCfg::block(2))
            .build();
        for i in 0..64u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let out = pipeline.shutdown().expect_clean();
        assert_eq!(out.len(), 64, "flush emitted everything buffered");
        assert_eq!(out[5], 10, "flush ran the stage's transformation");
    }

    #[derive(Debug, PartialEq)]
    struct SeqItem {
        seq: u64,
        shard: usize,
    }

    impl Sequenced for SeqItem {
        fn seq(&self) -> u64 {
            self.seq
        }
    }

    /// Router: hash keys across shards, broadcasting a mark every 10.
    struct HashRouter;

    impl FanOut for HashRouter {
        type In = u64;
        type Out = u64;
        fn name(&self) -> &str {
            "router"
        }
        fn route(&mut self, item: u64, outs: &mut ShardEmitters<u64>) {
            let shard = (shard_hash(item) % outs.shards() as u64) as usize;
            outs.send(shard, item);
            if item % 10 == 9 {
                outs.broadcast_mark(item);
            }
        }
    }

    /// Shard stage: emits each item tagged with its shard, on marks only
    /// (plus flush), in ascending seq order.
    struct MarkStage {
        shard: usize,
        name: String,
        held: Vec<u64>,
    }

    impl Stage for MarkStage {
        type In = ShardMsg<u64>;
        type Out = SeqItem;
        fn name(&self) -> &str {
            &self.name
        }
        fn process(&mut self, msg: ShardMsg<u64>, _ctx: &StageCtx, out: &mut Emitter<SeqItem>) {
            match msg {
                ShardMsg::Item(v) => self.held.push(v),
                ShardMsg::Mark(upto) => {
                    self.held.sort_unstable();
                    let ready: Vec<u64> =
                        self.held.iter().copied().filter(|&v| v <= upto).collect();
                    self.held.retain(|&v| v > upto);
                    for v in ready {
                        out.emit(SeqItem {
                            seq: v,
                            shard: self.shard,
                        });
                    }
                }
            }
        }
        fn flush(&mut self, _ctx: &StageCtx, out: &mut Emitter<SeqItem>) {
            self.held.sort_unstable();
            for v in self.held.drain(..) {
                out.emit(SeqItem {
                    seq: v,
                    shard: self.shard,
                });
            }
        }
    }

    #[test]
    fn sharded_merge_restores_global_order_at_any_shard_count() {
        let run = |shards: usize| -> Vec<u64> {
            let registry = Registry::new();
            let (tx, builder) = PipelineBuilder::<u64>::source(&registry, QueueCfg::block(64));
            let pipeline = builder
                .shard(
                    shards,
                    HashRouter,
                    |i| MarkStage {
                        shard: i,
                        name: format!("mark/{i}"),
                        held: Vec::new(),
                    },
                    QueueCfg::block(64),
                )
                .build();
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            pipeline
                .shutdown()
                .expect_clean()
                .into_iter()
                .map(|s| s.seq)
                .collect()
        };
        let reference = run(1);
        assert_eq!(reference, (0..100).collect::<Vec<u64>>());
        for shards in [2usize, 8] {
            assert_eq!(
                run(shards),
                reference,
                "{shards}-shard merge diverged from 1-shard order"
            );
        }
    }

    #[test]
    fn shard_hash_is_stable() {
        // Routing must be identical across runs/hosts: pin a few values.
        assert_eq!(shard_hash(0) % 8, shard_hash(0) % 8);
        let spread: std::collections::HashSet<u64> =
            (0..64u64).map(|k| shard_hash(k) % 8).collect();
        assert!(spread.len() >= 6, "splitmix spreads windows across shards");
    }
}
