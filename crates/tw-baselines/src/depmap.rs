//! Service-level dependency mapping — the *weaker* problem that WAP5,
//! Orion and Sherlock solve (paper §2.3): which services call which, and
//! how often per request, without linking individual requests.
//!
//! Included for completeness and as a sanity oracle: every request-level
//! mapping implies a dependency map, so TraceWeaver's output can be
//! validated against simple count ratios that need no reconstruction.

use std::collections::HashMap;
use tw_model::ids::ServiceId;
use tw_model::span::{RpcRecord, EXTERNAL};

/// Service dependency map: for each (caller, callee) pair, the average
/// number of calls to `callee` made per request handled by `caller`.
#[derive(Debug, Clone, Default)]
pub struct DependencyMap {
    /// Calls per request, keyed by (caller service, callee service).
    edges: HashMap<(ServiceId, ServiceId), f64>,
}

impl DependencyMap {
    /// Derive the map from raw span records: count incoming requests and
    /// outgoing calls per service and take ratios. No request linking
    /// needed — this is why dependency mapping is the easy problem.
    pub fn from_records(records: &[RpcRecord]) -> Self {
        let mut incoming: HashMap<ServiceId, usize> = HashMap::new();
        let mut outgoing: HashMap<(ServiceId, ServiceId), usize> = HashMap::new();
        for r in records {
            *incoming.entry(r.callee.service).or_default() += 1;
            if r.caller != EXTERNAL {
                *outgoing.entry((r.caller, r.callee.service)).or_default() += 1;
            }
        }
        let edges = outgoing
            .into_iter()
            .filter_map(|((a, b), m)| {
                incoming
                    .get(&a)
                    .filter(|&&n| n > 0)
                    .map(|&n| ((a, b), m as f64 / n as f64))
            })
            .collect();
        DependencyMap { edges }
    }

    /// Average calls from `a` to `b` per request at `a` (0.0 if never).
    pub fn strength(&self, a: ServiceId, b: ServiceId) -> f64 {
        self.edges.get(&(a, b)).copied().unwrap_or(0.0)
    }

    /// All edges with positive strength, sorted for determinism.
    pub fn edges(&self) -> Vec<((ServiceId, ServiceId), f64)> {
        let mut v: Vec<_> = self.edges.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by_key(|a| a.0);
        v
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_model::metrics::end_to_end_accuracy_all_roots;
    use tw_model::time::Nanos;
    use tw_sim::apps::hotel_reservation;
    use tw_sim::{Simulator, Workload};

    #[test]
    fn hotel_dependency_map_matches_topology() {
        let app = hotel_reservation(90);
        let catalog = app.config.catalog.clone();
        let svc = |n: &str| catalog.lookup_service(n).unwrap();
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(
            app.roots[0],
            300.0,
            Nanos::from_millis(800),
        ));
        let map = DependencyMap::from_records(&out.records);

        // Static topology: frontend calls each backend exactly once per
        // request; search calls geo and rate once.
        for (a, b) in [
            ("frontend", "search"),
            ("frontend", "reservation"),
            ("frontend", "profile"),
            ("search", "geo"),
            ("search", "rate"),
        ] {
            let s = map.strength(svc(a), svc(b));
            assert!((s - 1.0).abs() < 1e-9, "{a}->{b} strength {s}");
        }
        // No reverse edges.
        assert_eq!(map.strength(svc("geo"), svc("search")), 0.0);
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn empty_records() {
        let map = DependencyMap::from_records(&[]);
        assert!(map.is_empty());
    }

    /// Request-level reconstruction strictly refines dependency mapping:
    /// a perfect dependency map says nothing about which request caused
    /// which call, while TraceWeaver's mapping implies the exact map.
    #[test]
    fn reconstruction_implies_dependency_map() {
        let app = hotel_reservation(91);
        let graph = app.config.call_graph();
        let sim = Simulator::new(app.config).unwrap();
        let out = sim.run(&Workload::poisson(
            app.roots[0],
            200.0,
            Nanos::from_millis(500),
        ));
        let tw = tw_core::TraceWeaver::new(graph, tw_core::Params::default());
        let result = tw.reconstruct_records(&out.records);
        let acc = end_to_end_accuracy_all_roots(&result.mapping, &out.truth);
        assert!(acc.ratio() > 0.9);
        // Derive edge counts from the reconstructed mapping and compare
        // against the record-count map.
        let by_id = out.records_by_id();
        let mut derived: HashMap<(ServiceId, ServiceId), usize> = HashMap::new();
        for (parent, kids) in result.mapping.iter() {
            let a = by_id[&parent].callee.service;
            for k in kids {
                *derived.entry((a, by_id[k].callee.service)).or_default() += 1;
            }
        }
        let counted = DependencyMap::from_records(&out.records);
        for ((a, b), _) in counted.edges() {
            assert!(
                derived.get(&(a, b)).copied().unwrap_or(0) > 0,
                "edge {a:?}->{b:?} missing from reconstruction"
            );
        }
    }
}
