//! vPath / DeepFlow baseline (paper §2.2.4, §6.1 baseline ii).
//!
//! Assumes a synchronous threading model: the thread that received a
//! request performs all of its backend sends before picking up the next
//! request. Under that assumption, every outgoing request maps to the most
//! recent incoming request received *on the same thread*.
//!
//! When thread ids are unavailable (e.g. the Alibaba dataset), the paper
//! makes vPath assume all requests are handled by one thread; we do the
//! same (all events fold onto a single pseudo-thread).

use crate::Tracer;
use std::collections::HashMap;
use tw_model::mapping::Mapping;
use tw_model::span::{ProcessKey, SpanView};
use tw_model::time::Nanos;

/// How vPath interprets thread ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadMode {
    /// Fold every event onto one pseudo-thread per container. This is the
    /// configuration the paper evaluates for its benchmark apps: they all
    /// use RPC frameworks, so the captured id is the framework's I/O
    /// thread ("we only have the gRPC thread ID that picked up the
    /// request"), which vPath cannot use — it falls back to assuming a
    /// single thread. Also the only option for datasets without thread
    /// ids (Alibaba).
    #[default]
    Folded,
    /// Trust the recorded syscall thread ids — correct for applications
    /// with a blocking worker-pool model, where vPath's assumptions hold.
    Observed,
}

/// Thread-affinity tracer.
#[derive(Debug, Clone, Default)]
pub struct VPath {
    mode: ThreadMode,
}

impl VPath {
    /// The paper's evaluated configuration (folded threads).
    pub fn new() -> Self {
        VPath {
            mode: ThreadMode::Folded,
        }
    }

    /// Use recorded thread ids (blocking-pool apps).
    pub fn observed_threads() -> Self {
        VPath {
            mode: ThreadMode::Observed,
        }
    }
}

impl Tracer for VPath {
    fn name(&self) -> &'static str {
        "vpath"
    }

    fn reconstruct(&self, views: &HashMap<ProcessKey, SpanView>) -> Mapping {
        let mut mapping = Mapping::new();
        for view in views.values() {
            // Event streams per thread: incoming recv events and outgoing
            // send events, merged in time order.
            #[derive(Clone, Copy)]
            enum Ev {
                Recv { idx: usize },
                Send { idx: usize },
            }
            let thread_of = |t: Option<u32>| match self.mode {
                ThreadMode::Folded => 0,
                ThreadMode::Observed => t.unwrap_or(0),
            };
            let mut events: Vec<(Nanos, u32, Ev)> = Vec::new();
            for (i, s) in view.incoming.iter().enumerate() {
                events.push((s.start, thread_of(s.thread), Ev::Recv { idx: i }));
            }
            for (i, s) in view.outgoing.iter().enumerate() {
                events.push((s.start, thread_of(s.thread), Ev::Send { idx: i }));
            }
            events.sort_by_key(|&(t, _, _)| t);

            // Most recent incoming per thread.
            let mut last_recv: HashMap<u32, usize> = HashMap::new();
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); view.incoming.len()];
            for (_, thread, ev) in events {
                match ev {
                    Ev::Recv { idx } => {
                        last_recv.insert(thread, idx);
                    }
                    Ev::Send { idx } => {
                        if let Some(&p) = last_recv.get(&thread) {
                            children[p].push(idx);
                        }
                    }
                }
            }
            for (p, kids) in children.into_iter().enumerate() {
                mapping.assign(
                    view.incoming[p].rpc,
                    kids.into_iter().map(|i| view.outgoing[i].rpc),
                );
            }
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_model::ids::{Endpoint, OperationId, RpcId, ServiceId};
    use tw_model::span::ObservedSpan;

    fn ep(s: u32) -> Endpoint {
        Endpoint::new(ServiceId(s), OperationId(0))
    }

    fn span(rpc: u64, e: Endpoint, start: u64, end: u64, thread: Option<u32>) -> ObservedSpan {
        ObservedSpan {
            rpc: RpcId(rpc),
            peer: e.service,
            endpoint: e,
            start: Nanos::from_micros(start),
            end: Nanos::from_micros(end),
            thread,
        }
    }

    fn views_of(mut v: SpanView) -> HashMap<ProcessKey, SpanView> {
        v.sort();
        let mut m = HashMap::new();
        m.insert(ProcessKey::new(ServiceId(0), 0), v);
        m
    }

    #[test]
    fn blocking_model_correct() {
        // Two threads, each handling its own request; sends on the same
        // thread as the recv.
        let views = views_of(SpanView {
            incoming: vec![
                span(0, ep(0), 0, 300, Some(1)),
                span(1, ep(0), 10, 310, Some(2)),
            ],
            outgoing: vec![
                span(10, ep(1), 50, 100, Some(1)),
                span(11, ep(1), 60, 110, Some(2)),
            ],
        });
        let m = VPath::observed_threads().reconstruct(&views);
        assert_eq!(m.children(RpcId(0)), &[RpcId(10)]);
        assert_eq!(m.children(RpcId(1)), &[RpcId(11)]);
        // Folded mode on the same data degrades: both sends attribute to
        // the most recent arrival.
        let folded = VPath::new().reconstruct(&views);
        assert_eq!(folded.children(RpcId(1)).len(), 2);
    }

    #[test]
    fn async_interleaving_breaks_vpath() {
        // Single thread (event loop): request 0 arrives, then request 1,
        // but request 0's child is sent after request 1 arrived (async
        // I/O finished late) — vPath misattributes it to request 1.
        // This is exactly Figure 2b.
        let views = views_of(SpanView {
            incoming: vec![
                span(0, ep(0), 0, 400, Some(0)),
                span(1, ep(0), 100, 500, Some(0)),
            ],
            outgoing: vec![span(10, ep(1), 150, 250, Some(0))], // truth: child of 0
        });
        let m = VPath::new().reconstruct(&views);
        assert_eq!(
            m.children(RpcId(1)),
            &[RpcId(10)],
            "vPath must (wrongly) blame the most recent request"
        );
        assert!(m.children(RpcId(0)).is_empty());
    }

    #[test]
    fn missing_thread_ids_fold_to_one_thread() {
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 0, 300, None), span(1, ep(0), 10, 310, None)],
            outgoing: vec![span(10, ep(1), 50, 100, None)],
        });
        let m = VPath::new().reconstruct(&views);
        // Both spans on pseudo-thread 0: child goes to the later arrival.
        assert_eq!(m.children(RpcId(1)), &[RpcId(10)]);
    }

    #[test]
    fn send_before_any_recv_unassigned() {
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 100, 300, Some(0))],
            outgoing: vec![span(10, ep(1), 50, 80, Some(0))],
        });
        let m = VPath::new().reconstruct(&views);
        assert!(m.children(RpcId(0)).is_empty());
    }
}
