//! FCFS strawman (paper §6.1 baseline iii): match incoming and outgoing
//! spans per backend endpoint purely by arrival/departure order. Works
//! when requests are processed in order with little parallelism; collapses
//! as concurrency reorders requests.

use crate::Tracer;
use std::collections::HashMap;
use tw_model::callgraph::CallGraph;
use tw_model::ids::Endpoint;
use tw_model::mapping::Mapping;
use tw_model::span::{ProcessKey, SpanView};

/// Order-matching tracer. Uses the call graph only to know which backend
/// endpoints each served endpoint is supposed to call (the same knowledge
/// every tracer in the evaluation gets).
#[derive(Debug, Clone)]
pub struct Fcfs {
    call_graph: CallGraph,
}

impl Fcfs {
    pub fn new(call_graph: CallGraph) -> Self {
        Fcfs { call_graph }
    }
}

impl Tracer for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn reconstruct(&self, views: &HashMap<ProcessKey, SpanView>) -> Mapping {
        let mut mapping = Mapping::new();
        for view in views.values() {
            // Per backend endpoint: outgoing spans in send order.
            let mut out_by_ep: HashMap<Endpoint, Vec<usize>> = HashMap::new();
            for (i, o) in view.outgoing.iter().enumerate() {
                out_by_ep.entry(o.endpoint).or_default().push(i);
            }
            // Cursor per (serving endpoint? no—global per backend): k-th
            // expecting parent takes the k-th outgoing span.
            let mut cursor: HashMap<Endpoint, usize> = HashMap::new();
            // Incoming spans are sorted by start (SpanView::sort).
            for p in &view.incoming {
                let spec = self.call_graph.spec(p.endpoint);
                let mut children = Vec::new();
                for callee in spec.all_calls() {
                    let c = cursor.entry(callee).or_insert(0);
                    if let Some(list) = out_by_ep.get(&callee) {
                        if *c < list.len() {
                            children.push(view.outgoing[list[*c]].rpc);
                            *c += 1;
                        }
                    }
                }
                mapping.assign(p.rpc, children);
            }
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_model::callgraph::{DependencySpec, Stage};
    use tw_model::ids::{OperationId, RpcId, ServiceId};
    use tw_model::span::ObservedSpan;
    use tw_model::time::Nanos;

    fn ep(s: u32) -> Endpoint {
        Endpoint::new(ServiceId(s), OperationId(0))
    }

    fn span(rpc: u64, e: Endpoint, start: u64, end: u64) -> ObservedSpan {
        ObservedSpan {
            rpc: RpcId(rpc),
            peer: e.service,
            endpoint: e,
            start: Nanos::from_micros(start),
            end: Nanos::from_micros(end),
            thread: None,
        }
    }

    fn graph() -> CallGraph {
        let mut g = CallGraph::new();
        g.insert(ep(0), DependencySpec::new(vec![Stage::single(ep(1))]));
        g
    }

    fn views_of(view: SpanView) -> HashMap<ProcessKey, SpanView> {
        let mut m = HashMap::new();
        let mut v = view;
        v.sort();
        m.insert(ProcessKey::new(ServiceId(0), 0), v);
        m
    }

    #[test]
    fn in_order_requests_match() {
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 0, 100), span(1, ep(0), 200, 300)],
            outgoing: vec![span(10, ep(1), 10, 50), span(11, ep(1), 210, 250)],
        });
        let m = Fcfs::new(graph()).reconstruct(&views);
        assert_eq!(m.children(RpcId(0)), &[RpcId(10)]);
        assert_eq!(m.children(RpcId(1)), &[RpcId(11)]);
    }

    #[test]
    fn reordering_breaks_fcfs() {
        // Request 0 arrives first but its child is issued second.
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 0, 300), span(1, ep(0), 10, 200)],
            outgoing: vec![
                span(10, ep(1), 20, 60),  // actually child of 1
                span(11, ep(1), 70, 120), // actually child of 0
            ],
        });
        let m = Fcfs::new(graph()).reconstruct(&views);
        // FCFS pairs 0↔10 and 1↔11 — both wrong, as expected.
        assert_eq!(m.children(RpcId(0)), &[RpcId(10)]);
        assert_eq!(m.children(RpcId(1)), &[RpcId(11)]);
    }

    #[test]
    fn surplus_parents_get_empty() {
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 0, 100), span(1, ep(0), 200, 300)],
            outgoing: vec![span(10, ep(1), 10, 50)],
        });
        let m = Fcfs::new(graph()).reconstruct(&views);
        assert_eq!(m.children(RpcId(0)), &[RpcId(10)]);
        assert!(m.children(RpcId(1)).is_empty());
        assert!(m.contains(RpcId(1)));
    }

    #[test]
    fn leaf_endpoints_empty() {
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(9), 0, 100)],
            outgoing: vec![],
        });
        let m = Fcfs::new(graph()).reconstruct(&views);
        assert!(m.children(RpcId(0)).is_empty());
    }
}
