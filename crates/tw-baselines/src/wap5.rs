//! WAP5 baseline (paper §6.1 baseline i), re-purposed for request tracing.
//!
//! WAP5 solves dependency mapping via delay-based message linking. The
//! paper re-purposes its tree-building: each child request is assigned to
//! its most probable parent under a per-(parent-endpoint, child-endpoint)
//! delay distribution. We implement the two-pass version: a first
//! nearest-parent pass estimates the delay distributions; a second pass
//! re-assigns each child to the containing parent with the highest gap
//! likelihood. No feasibility pruning beyond window containment and no
//! joint optimization — the gap to TraceWeaver in the evaluation comes
//! precisely from those missing pieces.

use crate::Tracer;
use std::collections::HashMap;
use tw_model::ids::Endpoint;
use tw_model::mapping::Mapping;
use tw_model::span::{ObservedSpan, ProcessKey, SpanView};
use tw_stats::gaussian::Gaussian;

/// Delay-based probabilistic tracer.
#[derive(Debug, Clone, Default)]
pub struct Wap5 {
    /// How many recent parents to consider per child.
    pub window: usize,
}

impl Wap5 {
    pub fn new() -> Self {
        Wap5 { window: 64 }
    }
}

/// Most recent containing parent for each outgoing span (pass 1).
fn nearest_parent(incoming: &[ObservedSpan], o: &ObservedSpan, window: usize) -> Option<usize> {
    let from = incoming.partition_point(|p| p.start <= o.start);
    (0..from)
        .rev()
        .take(window)
        .find(|&p| incoming[p].end >= o.end)
}

impl Tracer for Wap5 {
    fn name(&self) -> &'static str {
        "wap5"
    }

    fn reconstruct(&self, views: &HashMap<ProcessKey, SpanView>) -> Mapping {
        let window = self.window.max(1);
        let mut mapping = Mapping::new();
        for view in views.values() {
            let incoming = &view.incoming;
            // Pass 1: nearest containing parent → delay samples per
            // (parent endpoint, child endpoint).
            let mut samples: HashMap<(Endpoint, Endpoint), Vec<f64>> = HashMap::new();
            for o in &view.outgoing {
                if let Some(p) = nearest_parent(incoming, o, window) {
                    samples
                        .entry((incoming[p].endpoint, o.endpoint))
                        .or_default()
                        .push(o.start.micros_since(incoming[p].start));
                }
            }
            let models: HashMap<(Endpoint, Endpoint), Gaussian> = samples
                .into_iter()
                .map(|(k, xs)| (k, Gaussian::fit(&xs)))
                .collect();

            // Pass 2: each child picks the containing parent with the
            // highest gap likelihood.
            let mut children: Vec<Vec<tw_model::ids::RpcId>> = vec![Vec::new(); incoming.len()];
            for o in &view.outgoing {
                let from = incoming.partition_point(|p| p.start <= o.start);
                let mut best: Option<(f64, usize)> = None;
                for p in (0..from).rev().take(window) {
                    let parent = &incoming[p];
                    if parent.end < o.end {
                        continue; // no containment
                    }
                    let gap = o.start.micros_since(parent.start);
                    let score = models
                        .get(&(parent.endpoint, o.endpoint))
                        .map(|g| g.log_pdf(gap))
                        .unwrap_or(f64::NEG_INFINITY);
                    if best.is_none_or(|(s, _)| score > s) {
                        best = Some((score, p));
                    }
                }
                if let Some((_, p)) = best {
                    children[p].push(o.rpc);
                }
            }
            for (p, kids) in children.into_iter().enumerate() {
                mapping.assign(incoming[p].rpc, kids);
            }
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_model::ids::{OperationId, RpcId, ServiceId};
    use tw_model::time::Nanos;

    fn ep(s: u32) -> Endpoint {
        Endpoint::new(ServiceId(s), OperationId(0))
    }

    fn span(rpc: u64, e: Endpoint, start: u64, end: u64) -> ObservedSpan {
        ObservedSpan {
            rpc: RpcId(rpc),
            peer: e.service,
            endpoint: e,
            start: Nanos::from_micros(start),
            end: Nanos::from_micros(end),
            thread: None,
        }
    }

    fn views_of(mut v: SpanView) -> HashMap<ProcessKey, SpanView> {
        v.sort();
        let mut m = HashMap::new();
        m.insert(ProcessKey::new(ServiceId(0), 0), v);
        m
    }

    #[test]
    fn disjoint_requests_trivially_correct() {
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 0, 1_000), span(1, ep(0), 5_000, 6_000)],
            outgoing: vec![span(10, ep(1), 100, 800), span(11, ep(1), 5_100, 5_800)],
        });
        let m = Wap5::new().reconstruct(&views);
        assert_eq!(m.children(RpcId(0)), &[RpcId(10)]);
        assert_eq!(m.children(RpcId(1)), &[RpcId(11)]);
    }

    #[test]
    fn consistent_gap_disambiguates_overlap() {
        // Parents every 200us, children exactly 100us after their parent.
        // WAP5's learned Gaussian centers at 100: the right parent wins
        // even though windows overlap.
        let mut incoming = Vec::new();
        let mut outgoing = Vec::new();
        for i in 0..20u64 {
            incoming.push(span(i, ep(0), i * 200, i * 200 + 1_000));
            outgoing.push(span(100 + i, ep(1), i * 200 + 100, i * 200 + 500));
        }
        let views = views_of(SpanView { incoming, outgoing });
        let m = Wap5::new().reconstruct(&views);
        let correct = (0..20u64)
            .filter(|&i| m.children(RpcId(i)) == [RpcId(100 + i)])
            .count();
        assert!(correct >= 16, "only {correct}/20 correct");
    }

    #[test]
    fn no_containing_parent_unassigned() {
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 0, 100)],
            outgoing: vec![span(10, ep(1), 50, 200)], // outlives the parent
        });
        let m = Wap5::new().reconstruct(&views);
        assert!(m.children(RpcId(0)).is_empty());
    }

    #[test]
    fn can_double_book_one_parent() {
        // Two children whose gaps both look typical for one parent: WAP5
        // happily gives both to the same parent (no joint optimization) —
        // the failure mode TraceWeaver's MIS fixes.
        let views = views_of(SpanView {
            incoming: vec![span(0, ep(0), 0, 1_000), span(1, ep(0), 20, 1_020)],
            outgoing: vec![span(10, ep(1), 120, 500), span(11, ep(1), 121, 501)],
        });
        let m = Wap5::new().reconstruct(&views);
        let total: usize = [0u64, 1].iter().map(|&p| m.children(RpcId(p)).len()).sum();
        assert_eq!(total, 2);
        // Not asserting which parent: the point is WAP5 does not enforce
        // one-child-per-slot, so both may land on one parent.
    }
}
