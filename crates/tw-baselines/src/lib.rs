//! Baseline non-intrusive tracers the paper compares against (§6.1):
//!
//! * [`fcfs`] — the order-matching strawman,
//! * [`vpath`] — vPath / DeepFlow thread-affinity tracing,
//! * [`wap5`] — WAP5's delay-based message linking, re-purposed for
//!   request tracing,
//! * [`depmap`] — service-level dependency mapping, the weaker related
//!   problem (§2.3) that the original WAP5/Orion/Sherlock solve.
//!
//! All baselines consume exactly the same observable signal as
//! TraceWeaver (per-process span views; vPath additionally uses syscall
//! thread ids when present) and emit a [`tw_model::Mapping`].

pub mod depmap;
pub mod fcfs;
pub mod vpath;
pub mod wap5;

pub use depmap::DependencyMap;
pub use fcfs::Fcfs;
pub use vpath::VPath;
pub use wap5::Wap5;

use std::collections::HashMap;
use tw_model::mapping::Mapping;
use tw_model::span::{split_by_process, ProcessKey, RpcRecord, SpanView};

/// Common interface for baseline tracers.
pub trait Tracer {
    fn name(&self) -> &'static str;

    /// Reconstruct parent→children mappings from per-process views.
    fn reconstruct(&self, views: &HashMap<ProcessKey, SpanView>) -> Mapping;

    /// Convenience: split raw records and reconstruct.
    fn reconstruct_records(&self, records: &[RpcRecord]) -> Mapping {
        self.reconstruct(&split_by_process(records))
    }
}
