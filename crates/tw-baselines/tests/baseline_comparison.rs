//! Baseline-vs-TraceWeaver ordering under load — the qualitative claim of
//! the paper's Figure 4a: at non-trivial load TraceWeaver beats WAP5,
//! vPath and FCFS; at high concurrency the order-based and thread-based
//! baselines degrade hard.

use tw_baselines::{Fcfs, Tracer, VPath, Wap5};
use tw_core::{Params, TraceWeaver};
use tw_model::metrics::end_to_end_accuracy_all_roots;
use tw_model::time::Nanos;
use tw_sim::apps::{hotel_reservation, nodejs_app};
use tw_sim::{Simulator, Workload};

struct Scores {
    tw: f64,
    wap5: f64,
    vpath: f64,
    fcfs: f64,
}

fn run_all(app: tw_sim::apps::BenchApp, rps: f64) -> Scores {
    let call_graph = app.config.call_graph();
    let root = app.roots[0];
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(root, rps, Nanos::from_millis(800)));

    let acc = |m: &tw_model::Mapping| end_to_end_accuracy_all_roots(m, &out.truth).ratio();

    let tw = TraceWeaver::new(call_graph.clone(), Params::default());
    let tw_acc = acc(&tw.reconstruct_records(&out.records).mapping);
    let wap5 = acc(&Wap5::new().reconstruct_records(&out.records));
    let vpath = acc(&VPath::new().reconstruct_records(&out.records));
    let fcfs = acc(&Fcfs::new(call_graph).reconstruct_records(&out.records));
    Scores {
        tw: tw_acc,
        wap5,
        vpath,
        fcfs,
    }
}

#[test]
fn hotel_under_load_traceweaver_wins() {
    let s = run_all(hotel_reservation(201), 600.0);
    assert!(s.tw > 0.75, "TraceWeaver {}", s.tw);
    assert!(s.tw > s.wap5, "tw {} <= wap5 {}", s.tw, s.wap5);
    assert!(s.tw > s.vpath, "tw {} <= vpath {}", s.tw, s.vpath);
    assert!(s.tw > s.fcfs, "tw {} <= fcfs {}", s.tw, s.fcfs);
}

#[test]
fn all_do_fine_at_negligible_load() {
    let s = run_all(hotel_reservation(202), 20.0);
    // With almost no concurrency, even the strawmen mostly match.
    assert!(s.tw > 0.95);
    assert!(s.fcfs > 0.8, "fcfs at 20rps {}", s.fcfs);
    assert!(s.wap5 > 0.8, "wap5 at 20rps {}", s.wap5);
    assert!(s.vpath > 0.4, "vpath at 20rps {}", s.vpath);
}

#[test]
fn async_app_breaks_vpath_not_traceweaver() {
    // The Node.js app's event loop funnels every syscall through thread 0;
    // under concurrency vPath's thread heuristic collapses.
    let s = run_all(nodejs_app(203), 500.0);
    assert!(s.tw > 0.7, "TraceWeaver on async app: {}", s.tw);
    assert!(
        s.tw > s.vpath + 0.2,
        "vPath should collapse on async: tw {} vs vpath {}",
        s.tw,
        s.vpath
    );
}

#[test]
fn fcfs_degrades_with_load() {
    let low = run_all(hotel_reservation(204), 30.0);
    let high = run_all(hotel_reservation(204), 900.0);
    assert!(
        low.fcfs > high.fcfs + 0.1,
        "fcfs low {} vs high {}",
        low.fcfs,
        high.fcfs
    );
}
