//! Workspace-level integration tests: the complete TraceWeaver pipeline
//! across crates — capture → wire transport → call-graph learning →
//! reconstruction → evaluation — plus the production-dataset path.

use traceweaver::alibaba;
use traceweaver::capture::{
    decode_records, encode_records, generate_test_traces, infer_call_graph,
};
use traceweaver::prelude::*;

#[test]
fn capture_to_reconstruction_with_learned_graph() {
    // Learn the call graph purely from test-environment replays, then
    // reconstruct production traffic through the wire format.
    let app = traceweaver::sim::apps::hotel_reservation(301);
    let traces = generate_test_traces(&app.config, app.roots[0], 10, 5);
    let learned = infer_call_graph(&traces);

    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 250.0, Nanos::from_secs(1)));

    // Round-trip the records through the binary wire format.
    let shipped = decode_records(encode_records(&out.records)).unwrap();
    assert_eq!(shipped, out.records);

    let tw = TraceWeaver::new(learned, Params::default());
    let result = tw.reconstruct_records(&shipped);
    let acc = end_to_end_accuracy_all_roots(&result.mapping, &out.truth);
    assert!(
        acc.ratio() > 0.85,
        "learned-graph reconstruction accuracy {}",
        acc.ratio()
    );
}

#[test]
fn degraded_capture_still_works() {
    // Thread ids dropped and small timestamp jitter: TraceWeaver uses
    // neither thread ids nor exact timestamps, so accuracy holds.
    let app = traceweaver::sim::apps::hotel_reservation(302);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 200.0, Nanos::from_secs(1)));

    let layer = CaptureLayer::new(traceweaver::capture::CaptureOptions {
        drop_thread_ids: true,
        timestamp_jitter_ns: 2_000, // ±2us
        drop_prob: 0.0,
        seed: 1,
    });
    let observed = layer.observe(&out.records);
    let tw = TraceWeaver::new(call_graph, Params::default());
    let result = tw.reconstruct_records(&observed);
    let acc = end_to_end_accuracy_all_roots(&result.mapping, &out.truth);
    assert!(
        acc.ratio() > 0.8,
        "degraded-capture accuracy {}",
        acc.ratio()
    );
}

#[test]
fn alibaba_compression_pipeline() {
    let ds = alibaba::generate(303, 3, 20);
    for case in &ds.cases {
        let tw = TraceWeaver::new(case.config.call_graph(), Params::default());

        // Uncompressed base traces: near-trivial.
        let base = tw.reconstruct_records(&case.base.records);
        let base_acc = end_to_end_accuracy_all_roots(&base.mapping, &case.base.truth);
        assert!(
            base_acc.ratio() > 0.85,
            "{}: base accuracy {}",
            case.name,
            base_acc.ratio()
        );

        // Heavy compression raises concurrency and lowers accuracy, but
        // the algorithm must not collapse.
        let compressed = alibaba::compress_traces(&case.base.records, &case.base.truth, 50.0);
        let hard = tw.reconstruct_records(&compressed);
        let hard_acc = end_to_end_accuracy_all_roots(&hard.mapping, &case.base.truth);
        assert!(
            hard_acc.ratio() <= base_acc.ratio() + 1e-9,
            "{}: compression should not help",
            case.name
        );
    }
}

#[test]
fn http_wire_capture_loop() {
    // Full-fidelity capture path: the simulator's RPCs are rendered into
    // raw HTTP/1.1 connection bytes at both observation points, parsed
    // back into spans by the §5.1.2 substrate, and reconstructed. The
    // timing signal survives byte-level capture, so accuracy must match
    // direct span capture (thread ids are lost, which TraceWeaver never
    // uses anyway).
    use traceweaver::capture::{render_http_segments, segments_to_records};
    let app = traceweaver::sim::apps::hotel_reservation(306);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 250.0, Nanos::from_secs(1)));

    let segments = render_http_segments(&out.records);
    let parsed = segments_to_records(&segments).unwrap();
    assert_eq!(parsed.len(), out.records.len());

    let tw = TraceWeaver::new(call_graph.clone(), Params::default());
    let from_http = tw.reconstruct_records(&parsed);
    let direct = tw.reconstruct_records(&out.records);
    let acc_http = end_to_end_accuracy_all_roots(&from_http.mapping, &out.truth).ratio();
    let acc_direct = end_to_end_accuracy_all_roots(&direct.mapping, &out.truth).ratio();
    assert!(
        (acc_http - acc_direct).abs() < 0.02,
        "HTTP capture path diverged: {acc_http} vs {acc_direct}"
    );
    assert!(acc_http > 0.9);
}

#[test]
fn offline_store_range_reconstruction() {
    let app = traceweaver::sim::apps::two_service_chain(304);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 400.0, Nanos::from_secs(2)));

    let store = OfflineStore::new();
    store.ingest(&out.records);
    let tw = TraceWeaver::new(call_graph, Params::default());
    // Reconstruct only the second half of the run.
    let result = store.reconstruct_range(&tw, Nanos::from_secs(1), Nanos::from_secs(2));
    assert!(!result.mapping.is_empty());
    // Spot check: every mapped parent started in-range.
    let by_id = out.records_by_id();
    for (parent, _) in result.mapping.iter() {
        assert!(by_id[&parent].send_req >= Nanos::from_secs(1));
    }
}

#[test]
fn parallel_reconstruction_is_deterministic() {
    // The executor must be invisible in the output: across thread counts
    // the Mapping AND the RankedMapping (candidate sets and scores) are
    // identical, bit for bit. Scheduling may only change wall time.
    let app = traceweaver::sim::apps::hotel_reservation(307);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 400.0, Nanos::from_secs(1)));

    let reference =
        TraceWeaver::new(call_graph.clone(), Params::default()).reconstruct_records(&out.records);
    for threads in [1usize, 2, 8] {
        let tw = TraceWeaver::new(call_graph.clone(), Params::with_threads(threads));
        let result = tw.reconstruct_records(&out.records);
        assert_eq!(
            reference.reports.len(),
            result.reports.len(),
            "{threads} threads: task count diverged"
        );
        for rec in &out.records {
            assert_eq!(
                reference.mapping.children(rec.rpc),
                result.mapping.children(rec.rpc),
                "{threads} threads: mapping diverged at {:?}",
                rec.rpc
            );
            assert_eq!(
                reference.ranked.candidates(rec.rpc),
                result.ranked.candidates(rec.rpc),
                "{threads} threads: ranked candidates diverged at {:?}",
                rec.rpc
            );
            let (a, b) = (
                reference.ranked.scores(rec.rpc),
                result.ranked.scores(rec.rpc),
            );
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{threads} threads: score bits diverged at {:?}",
                    rec.rpc
                );
            }
        }
    }
}

#[test]
fn warm_reconstruction_is_deterministic_across_threads() {
    // Warm starts must preserve the executor-invisibility invariant: with
    // the same prior registry, every thread count produces bit-identical
    // mappings, ranked candidates, and score bits — and an identical
    // posterior registry.
    let app = traceweaver::sim::apps::hotel_reservation(308);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 400.0, Nanos::from_secs(1)));
    let mid = Nanos::from_millis(500);
    let first: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.send_req < mid)
        .copied()
        .collect();
    let second: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.send_req >= mid)
        .copied()
        .collect();
    assert!(!first.is_empty() && !second.is_empty());

    // Build a prior from the first half, warm-reconstruct the second.
    let (reference, ref_posterior) = {
        let tw = TraceWeaver::new(call_graph.clone(), Params::default());
        let (_, prior) = tw.reconstruct_records_with_registry(&first, &DelayRegistry::new());
        assert!(!prior.is_empty(), "first half must produce a prior");
        tw.reconstruct_records_with_registry(&second, &prior)
    };
    for threads in [1usize, 2, 8] {
        let tw = TraceWeaver::new(call_graph.clone(), Params::with_threads(threads));
        let (_, prior) = tw.reconstruct_records_with_registry(&first, &DelayRegistry::new());
        let (result, posterior) = tw.reconstruct_records_with_registry(&second, &prior);
        assert_eq!(
            posterior.len(),
            ref_posterior.len(),
            "{threads} threads: posterior edge count diverged"
        );
        for rec in &second {
            assert_eq!(
                reference.mapping.children(rec.rpc),
                result.mapping.children(rec.rpc),
                "{threads} threads: warm mapping diverged at {:?}",
                rec.rpc
            );
            assert_eq!(
                reference.ranked.candidates(rec.rpc),
                result.ranked.candidates(rec.rpc),
                "{threads} threads: warm ranked candidates diverged at {:?}",
                rec.rpc
            );
            let (a, b) = (
                reference.ranked.scores(rec.rpc),
                result.ranked.scores(rec.rpc),
            );
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{threads} threads: warm score bits diverged at {:?}",
                    rec.rpc
                );
            }
        }
    }
}

#[test]
fn warm_second_window_matches_cold_on_stationary_workload() {
    // On a stationary workload the warm path's prior describes exactly the
    // delays the second window will see, so warm reconstruction must map
    // at least as many spans as a cold start on the same window.
    let app = traceweaver::sim::apps::hotel_reservation(309);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 400.0, Nanos::from_secs(2)));
    let mid = Nanos::from_secs(1);
    let first: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.send_req < mid)
        .copied()
        .collect();
    let second: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.send_req >= mid)
        .copied()
        .collect();

    let tw = TraceWeaver::new(call_graph, Params::default());
    let (first_rec, prior) = tw.reconstruct_records_with_registry(&first, &DelayRegistry::new());
    let (warm, _) = tw.reconstruct_records_with_registry(&second, &prior);
    let cold = tw.reconstruct_records(&second);
    let mapped = |r: &Reconstruction| r.summary().mapped_spans;
    assert!(
        mapped(&warm) >= mapped(&cold),
        "warm window mapped {} spans, cold mapped {}",
        mapped(&warm),
        mapped(&cold)
    );
    // And end-to-end accuracy over the whole run (both windows merged)
    // holds up against ground truth. Traces straddling the split point
    // lose children to the other window, so the bar allows for a handful
    // of boundary casualties.
    let mut merged = Mapping::new();
    merged.merge(first_rec.mapping.clone());
    merged.merge(warm.mapping.clone());
    let warm_acc = end_to_end_accuracy_all_roots(&merged, &out.truth);
    assert!(
        warm_acc.ratio() > 0.85,
        "warm accuracy {}",
        warm_acc.ratio()
    );
}

#[test]
fn ablations_do_not_beat_full_system() {
    let app = traceweaver::sim::apps::hotel_reservation(305);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(
        app.roots[0],
        700.0,
        Nanos::from_millis(800),
    ));

    let accuracy = |p: Params| {
        let tw = TraceWeaver::new(call_graph.clone(), p);
        end_to_end_accuracy_all_roots(&tw.reconstruct_records(&out.records).mapping, &out.truth)
            .ratio()
    };
    let full = accuracy(Params::default());
    let no_order = accuracy(Params::default().ablate_order_constraints());
    let no_joint = accuracy(Params::default().ablate_joint_optimization());
    assert!(
        full >= no_order - 0.02,
        "full {full} vs no_order {no_order}"
    );
    assert!(
        full >= no_joint - 0.02,
        "full {full} vs no_joint {no_joint}"
    );
}

#[test]
fn drift_faulted_stream_is_corrected_and_deterministic() {
    // End-to-end drift path: per-service clock drift injected by the
    // fault plan → sanitizer (two-state offset+drift filter) → online
    // engine. Corrected timestamps must be monotone-causal again (child
    // spans nest inside their parents despite the injected ramp), and
    // the whole pipeline must stay deterministic across engine worker
    // counts.
    use std::collections::HashMap;
    use traceweaver::model::span::RpcRecord;
    use traceweaver::pipeline::{SanitizeConfig, Sanitizer};
    use traceweaver::sim::{Fault, FaultPlan};

    let app = traceweaver::sim::apps::hotel_reservation(309);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).unwrap();
    let out = sim.run(&Workload::poisson(app.roots[0], 150.0, Nanos::from_secs(4)));
    let mut arrival: Vec<RpcRecord> = out.records.clone();
    arrival.sort_by_key(|r| (r.recv_resp, r.rpc));

    // Service 1's clock starts 3ms fast and gains 300 ppm; service 2
    // drifts the other way. Both offsets are far above the sanitizer's
    // 50µs noise floor.
    let plan = FaultPlan::new(9)
        .with(Fault::ClockSkew {
            service: traceweaver::model::ids::ServiceId(1),
            offset_ns: 3_000_000,
            drift_ppm: 300.0,
        })
        .with(Fault::ClockSkew {
            service: traceweaver::model::ids::ServiceId(2),
            offset_ns: -2_000_000,
            drift_ppm: -200.0,
        });
    let (perturbed, log) = plan.apply(&arrival);
    assert_eq!(log.emitted, arrival.len(), "skew drops nothing");

    let mut sanitizer = Sanitizer::new(SanitizeConfig::default());
    let corrected = sanitizer.sanitize_batch(perturbed.iter().copied());
    assert_eq!(
        corrected.len(),
        arrival.len(),
        "skew is repaired, not dropped"
    );
    assert!(sanitizer.stats().skew_corrected > 0);

    // Monotone-causal: after correction, every child span nests inside
    // its true parent's span again — `recv_req` at the callee cannot
    // precede `send_req` at the caller (one-way delays are positive in
    // the common frame). Skip the warmup prefix where the filter is
    // still converging on the injected offsets.
    let by_id: HashMap<_, _> = corrected.iter().map(|r| (r.rpc, r)).collect();
    let warmup = corrected.len() / 5;
    let mut checked = 0usize;
    for rec in corrected.iter().skip(warmup) {
        assert!(
            rec.recv_req >= rec.send_req,
            "corrected request travels backwards at {:?}: {} -> {}",
            rec.rpc,
            rec.send_req.0,
            rec.recv_req.0
        );
        assert!(
            rec.recv_resp >= rec.send_resp,
            "corrected response travels backwards at {:?}",
            rec.rpc
        );
        for &child in out.truth.children(rec.rpc) {
            if let Some(c) = by_id.get(&child) {
                assert!(
                    c.recv_req >= rec.recv_req && c.send_resp <= rec.send_resp,
                    "corrected child {:?} escapes parent {:?}",
                    child,
                    rec.rpc
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "nesting assertions actually ran: {checked}");

    // Determinism: the sanitized stream feeds the online engine at 1/2/8
    // worker threads; window shapes and merged mappings must match.
    let run = |threads: usize| {
        let tw = TraceWeaver::new(call_graph.clone(), Params::default());
        let engine = OnlineEngine::start(
            tw,
            OnlineConfig {
                window: Nanos::from_millis(250),
                grace: Nanos::from_millis(50),
                threads,
                ..OnlineConfig::default()
            },
        );
        let ingest = engine.ingest_handle();
        for r in &corrected {
            ingest.send(*r).unwrap();
        }
        drop(ingest);
        let windows = engine.shutdown();
        let shapes: Vec<(u64, usize)> =
            windows.iter().map(|w| (w.index, w.records.len())).collect();
        let mut mapping = Mapping::new();
        for w in &windows {
            mapping.merge(w.reconstruction.mapping.clone());
        }
        (shapes, mapping)
    };
    let (ref_shapes, ref_mapping) = run(1);
    let acc = end_to_end_accuracy_all_roots(&ref_mapping, &out.truth);
    assert!(
        acc.ratio() > 0.7,
        "drift-corrected reconstruction accuracy {}",
        acc.ratio()
    );
    for threads in [2usize, 8] {
        let (shapes, mapping) = run(threads);
        assert_eq!(
            ref_shapes, shapes,
            "{threads} threads: window shapes diverged"
        );
        for rec in &corrected {
            assert_eq!(
                ref_mapping.children(rec.rpc),
                mapping.children(rec.rpc),
                "{threads} threads: mapping diverged at {:?}",
                rec.rpc
            );
        }
    }
}
