//! Critical-path analysis on reconstructed traces: which services
//! actually gate end-to-end latency once parallelism is accounted for?
//!
//! ```sh
//! cargo run --release --example critical_path
//! ```

use traceweaver::model::critical_path::critical_path_breakdown;
use traceweaver::prelude::*;

fn main() {
    let app = traceweaver::sim::apps::media_microservices(23);
    let catalog = app.config.catalog.clone();
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).expect("valid config");
    // Mix both flows: compose-review posts and page reads.
    let out = sim.run(
        &Workload::poisson(app.roots[0], 300.0, Nanos::from_secs(2))
            .with_mix(vec![(app.roots[0], 1.0), (app.roots[1], 1.0)]),
    );

    let tw = TraceWeaver::new(call_graph, Params::default());
    let result = tw.reconstruct_records(&out.records);
    let acc = end_to_end_accuracy_all_roots(&result.mapping, &out.truth);
    println!("reconstruction accuracy: {:.1}%\n", acc.percent());

    let records = out.records_by_id();
    let roots: Vec<RpcId> = out.truth.roots().to_vec();
    let mapping = result.mapping.clone();
    let breakdown = critical_path_breakdown(
        roots.iter().copied(),
        |r| mapping.children(r).to_vec(),
        &records,
    );

    println!("critical-path self-time per service (reconstructed traces):");
    println!(
        "{:<16} {:>8} {:>10} {:>10}",
        "service", "traces", "mean (us)", "p95 (us)"
    );
    let mut rows: Vec<_> = breakdown.into_iter().collect();
    rows.sort_by(|a, b| {
        traceweaver::stats::mean(&b.1)
            .partial_cmp(&traceweaver::stats::mean(&a.1))
            .unwrap()
    });
    for (svc, xs) in rows {
        println!(
            "{:<16} {:>8} {:>10.0} {:>10.0}",
            catalog.service_name(svc),
            xs.len(),
            traceweaver::stats::mean(&xs),
            traceweaver::stats::percentile(&xs, 95.0),
        );
    }
    println!(
        "\n=> Services that appear here with large self-times gate latency;\n   \
         services absent from the table are fully hidden by parallel calls."
    );
}
