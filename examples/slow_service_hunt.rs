//! Use case 1 (paper §6.4.1): find which backend services cause tail
//! latency for the slowest 2% of requests.
//!
//! A latency anomaly (+40ms at Reservation and Profile for 10% of
//! requests) is injected. Without request traces, filtering *spans* by
//! tail latency blames every service; with TraceWeaver's reconstructed
//! traces, filtering *traces* in the top-2% bracket pinpoints the culprits.
//!
//! ```sh
//! cargo run --release --example slow_service_hunt
//! ```

use std::collections::HashMap;
use traceweaver::model::ids::ServiceId;
use traceweaver::model::metrics::exclusive_time_per_service;
use traceweaver::prelude::*;
use traceweaver::sim::apps::{hotel_reservation_with, HotelOptions};

fn main() {
    let app = hotel_reservation_with(HotelOptions {
        slow_extra_us: 40_000.0, // +40ms at Reservation & Profile
        seed: 7,
        ..HotelOptions::default()
    });
    let catalog = app.config.catalog.clone();
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).expect("valid config");
    let out = sim
        .run(&Workload::poisson(app.roots[0], 250.0, Nanos::from_secs(3)).with_slow_fraction(0.10));

    let tw = TraceWeaver::new(call_graph, Params::default());
    let result = tw.reconstruct_records(&out.records);
    let acc = end_to_end_accuracy_all_roots(&result.mapping, &out.truth);
    println!("reconstruction accuracy: {:.1}%\n", acc.percent());

    // Select the slowest 2% of end-to-end requests.
    let mut lats = out.root_latencies_us();
    lats.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let cut = (lats.len() as f64 * 0.98) as usize;
    let slow_roots: Vec<RpcId> = lats[cut..].iter().map(|&(r, _)| r).collect();
    println!(
        "analyzing the slowest {} of {} requests (top 2%)",
        slow_roots.len(),
        lats.len()
    );

    let records = out.records_by_id();
    let attribute = |children_of: &dyn Fn(RpcId) -> Vec<RpcId>| -> Vec<(ServiceId, f64)> {
        let mut per_service: HashMap<ServiceId, Vec<f64>> = HashMap::new();
        for &root in &slow_roots {
            let mut rpcs = vec![root];
            let mut i = 0;
            while i < rpcs.len() {
                let kids = children_of(rpcs[i]);
                rpcs.extend(kids);
                i += 1;
            }
            let times = exclusive_time_per_service(rpcs.iter().copied(), children_of, &records);
            for (svc, t) in times {
                per_service.entry(svc).or_default().push(t / 1_000.0);
            }
        }
        let mut rows: Vec<(ServiceId, f64)> = per_service
            .into_iter()
            .map(|(s, xs)| (s, traceweaver::stats::mean(&xs)))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        rows
    };

    println!("\nmean exclusive time per service in slow traces (reconstructed):");
    let mapping = result.mapping.clone();
    for (svc, ms) in attribute(&|r| mapping.children(r).to_vec()) {
        println!("  {:<14} {:>8.2} ms", catalog.service_name(svc), ms);
    }

    println!("\nsame analysis on ground-truth traces (oracle):");
    let truth = out.truth.clone();
    for (svc, ms) in attribute(&|r| truth.children(r).to_vec()) {
        println!("  {:<14} {:>8.2} ms", catalog.service_name(svc), ms);
    }

    println!(
        "\n=> Reservation and Profile should dominate both tables: the\n   \
         reconstructed traces localize the injected anomaly just like the\n   \
         ground truth does (paper Figure 6c)."
    );
}
