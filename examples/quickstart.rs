//! Quickstart: reconstruct request traces for a microservice application
//! without any instrumentation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use traceweaver::prelude::*;

fn main() {
    // A DeathStarBench-style HotelReservation app (6 services over gRPC
    // worker pools), simulated deterministically.
    let app = traceweaver::sim::apps::hotel_reservation(42);
    let catalog = app.config.catalog.clone();
    let call_graph = app.config.call_graph();

    // Drive it with an open-loop Poisson workload and capture spans —
    // the only signal a real eBPF/sidecar layer would see.
    let sim = Simulator::new(app.config).expect("valid app config");
    let out = sim.run(&Workload::poisson(app.roots[0], 300.0, Nanos::from_secs(2)));
    println!(
        "simulated {} requests -> {} spans across {} services",
        out.stats.arrivals,
        out.records.len(),
        catalog.num_services(),
    );

    // Reconstruct.
    let tw = TraceWeaver::new(call_graph, Params::default());
    let result = tw.reconstruct_records(&out.records);

    // Score against the simulator's ground truth (Jaeger stand-in).
    let e2e = end_to_end_accuracy_all_roots(&result.mapping, &out.truth);
    let parents = out.records.iter().map(|r| r.rpc);
    let per_span = per_service_accuracy(&result.mapping, &out.truth, parents);
    println!(
        "end-to-end trace accuracy: {:.1}%  ({} / {} traces fully correct)",
        e2e.percent(),
        e2e.correct,
        e2e.total
    );
    println!("per-span accuracy:         {:.1}%", per_span.percent());

    // Render one reconstructed trace as a waterfall.
    let records = out.records_by_id();
    if let Some(&root) = out.truth.roots().first() {
        println!("\nreconstructed trace for request {:?}:", root);
        print!(
            "{}",
            traceweaver::viz::render_waterfall(root, &result.mapping, &records, &catalog, 48)
        );
    }

    // Per-service confidence scores (which services were hard?).
    println!("\nper-service confidence:");
    let mut confs: Vec<_> = result.confidence_by_service().into_iter().collect();
    confs.sort_by_key(|(s, _)| *s);
    for (svc, conf) in confs {
        println!("  {:<14} {:.1}%", catalog.service_name(svc), conf);
    }
}
