//! The preprocessing pipeline (paper §5.2): learn an application's call
//! graph and dependency order from isolated test-environment replays, then
//! reconstruct production traffic using only the *learned* graph.
//!
//! ```sh
//! cargo run --release --example learn_call_graph
//! ```

use traceweaver::prelude::*;

fn main() {
    let app = traceweaver::sim::apps::media_microservices(5);
    let catalog = app.config.catalog.clone();

    // 1. Test environment: replay requests one at a time with artificial
    //    delay perturbation (the paper uses Linux TC rules) so serial vs
    //    parallel invocation is unambiguous.
    println!("replaying isolated test requests per flow...");
    let mut traces = Vec::new();
    for &root in &app.roots {
        traces.extend(generate_test_traces(&app.config, root, 12, 99));
    }
    println!("  {} test traces captured", traces.len());

    // 2. Infer the call graph + dependency order by edge elimination.
    let learned = infer_call_graph(&traces);
    println!("\nlearned dependency order:");
    let mut endpoints: Vec<_> = learned.endpoints().collect();
    endpoints.sort();
    for served in endpoints {
        let spec = learned.spec(served);
        if spec.is_leaf() {
            continue;
        }
        let stages: Vec<String> = spec
            .stages
            .iter()
            .map(|st| {
                let calls: Vec<String> =
                    st.calls.iter().map(|&e| catalog.endpoint_name(e)).collect();
                format!("[{}]", calls.join(" || "))
            })
            .collect();
        println!(
            "  {:<32} -> {}",
            catalog.endpoint_name(served),
            stages.join(" ; ")
        );
    }

    // 3. Sanity: the learned graph matches the configured one.
    let actual = app.config.call_graph();
    let mut matches = 0;
    let mut total = 0;
    for served in actual.endpoints() {
        total += 1;
        if actual.spec(served) == learned.spec(served) {
            matches += 1;
        }
    }
    println!("\nlearned graph matches configuration at {matches}/{total} endpoints");

    // 4. Reconstruct production traffic using the LEARNED graph only.
    let sim = Simulator::new(app.config).expect("valid config");
    let out = sim.run(
        &Workload::poisson(app.roots[0], 200.0, Nanos::from_secs(2))
            .with_mix(vec![(app.roots[0], 3.0), (app.roots[1], 1.0)]),
    );
    let tw = TraceWeaver::new(learned, Params::default());
    let result = tw.reconstruct_records(&out.records);
    let acc = end_to_end_accuracy_all_roots(&result.mapping, &out.truth);
    println!(
        "reconstruction with the learned call graph: {:.1}% end-to-end accuracy",
        acc.percent()
    );
}
