//! Online deployment with tail-based sampling (paper §5.3).
//!
//! Spans stream into a live engine (here over a channel, in production
//! over the wire using `tw_capture::wire` frames); windows are
//! reconstructed in real time and a tail sampler keeps 10% of complete
//! traces — the sampling style that is impossible head-based without
//! context propagation.
//!
//! ```sh
//! cargo run --release --example online_sampling
//! ```

use traceweaver::capture::{decode_records, encode_records};
use traceweaver::prelude::*;

fn main() {
    let app = traceweaver::sim::apps::nodejs_app(17);
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).expect("valid config");
    let out = sim.run(&Workload::poisson(app.roots[0], 400.0, Nanos::from_secs(3)));

    // Ship the records through the binary wire format, as a capture agent
    // would across the network.
    let frames = encode_records(&out.records);
    println!(
        "captured {} spans ({} KiB on the wire)",
        out.records.len(),
        frames.len() / 1024
    );
    let mut received = decode_records(frames).expect("well-formed frames");
    received.sort_by_key(|r| r.send_req);

    // Live engine: 500ms windows.
    let tw = TraceWeaver::new(call_graph, Params::default());
    let engine = OnlineEngine::start(
        tw,
        OnlineConfig {
            window: Nanos::from_millis(500),
            grace: Nanos::from_millis(100),
            channel_capacity: 8_192,
            threads: 1,
            ..OnlineConfig::default()
        },
    );
    let ingest = engine.ingest_handle();
    for rec in received {
        ingest.send(rec).expect("engine alive");
    }
    drop(ingest);

    let results = engine.results().clone();
    let mut windows = engine.shutdown();
    windows.extend(results.try_iter());
    windows.sort_by_key(|w| w.index);

    // Tail-sample 10% of reconstructed traces per window.
    let mut sampler = TailSampler::new(0.10, 3);
    let mut kept_total = 0usize;
    let mut span_total = 0usize;
    println!("\n window |  spans | kept after 10% tail sampling");
    println!("{}", "-".repeat(48));
    for w in &windows {
        let kept = sampler.sample(&w.records, &w.reconstruction);
        println!(
            "{:>7} | {:>6} | {:>6}",
            w.index,
            w.records.len(),
            kept.len()
        );
        kept_total += kept.len();
        span_total += w.records.len();
    }
    println!(
        "\nstored {} of {} spans ({:.1}%) while keeping every sampled trace complete",
        kept_total,
        span_total,
        100.0 * kept_total as f64 / span_total as f64
    );

    // Accuracy check over all windows.
    let mut merged = Mapping::new();
    for w in &windows {
        merged.merge(w.reconstruction.mapping.clone());
    }
    let acc = end_to_end_accuracy_all_roots(&merged, &out.truth);
    println!("online end-to-end accuracy: {:.1}%", acc.percent());
}
