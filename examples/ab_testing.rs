//! Use case 2 (paper §6.4.2): A/B-testing a recommendation engine with
//! reconstructed traces.
//!
//! x% of requests are routed to version B of a recommendation service.
//! User satisfaction is only measurable end-to-end, so without traces the
//! operator can only compare *aggregate* satisfaction (weak signal unless
//! x is large). With reconstructed traces, requests served by B are
//! separated from those served by A — even with some reconstruction error
//! — and a two-sample Welch t-test resolves the difference at much
//! smaller x.
//!
//! ```sh
//! cargo run --release --example ab_testing
//! ```

use traceweaver::prelude::*;
use traceweaver::sim::apps::{hotel_reservation_with, HotelOptions};
use traceweaver::stats::sampler::Sampler;
use traceweaver::stats::welch_t_test;

/// Satisfaction model: base score ~N(70, 8); version B adds +4.
const B_EFFECT: f64 = 4.0;

fn main() {
    println!(
        "{:>6} | {:>12} | {:>12}",
        "x %", "p (no traces)", "p (traces)"
    );
    println!("{}", "-".repeat(40));
    for &x in &[0.01, 0.02, 0.05, 0.10, 0.20] {
        let (p_without, p_with) = run_ab(x, 11);
        println!(
            "{:>5.0}% | {:>12.4} | {:>12.4}{}",
            x * 100.0,
            p_without,
            p_with,
            if p_with < 0.05 && p_without >= 0.05 {
                "   <- only traces detect B"
            } else {
                ""
            }
        );
    }
}

fn run_ab(x: f64, seed: u64) -> (f64, f64) {
    let app = hotel_reservation_with(HotelOptions {
        ab_split_to_b: Some(x),
        seed,
        ..HotelOptions::default()
    });
    let catalog = app.config.catalog.clone();
    let rec_b = catalog.lookup_service("recommend-b").expect("B exists");
    let call_graph = app.config.call_graph();
    let sim = Simulator::new(app.config).expect("valid config");
    let out = sim.run(&Workload::poisson(app.roots[0], 400.0, Nanos::from_secs(3)));

    // Ground-truth satisfaction per request (end-to-end signal: the
    // operator can see the score per request but NOT which version served
    // it).
    let mut noise = Sampler::new(seed ^ 0xAB);
    let mut scores: Vec<(RpcId, f64, bool)> = Vec::new(); // (root, score, truth_is_b)
    for &root in out.truth.roots() {
        let is_b = out
            .truth
            .descendants(root)
            .iter()
            .any(|&r| out.records[r.0 as usize].callee.service == rec_b);
        let score = noise.normal(70.0, 8.0) + if is_b { B_EFFECT } else { 0.0 };
        scores.push((root, score, is_b));
    }

    // WITHOUT traces: compare this A/B run's aggregate scores against a
    // baseline run where everyone gets A (x=0 ⇒ same distribution minus
    // the B effect on x% of requests).
    let mut base_noise = Sampler::new(seed ^ 0xBA);
    let baseline: Vec<f64> = (0..scores.len())
        .map(|_| base_noise.normal(70.0, 8.0))
        .collect();
    let aggregate: Vec<f64> = scores.iter().map(|&(_, s, _)| s).collect();
    let p_without = welch_t_test(&aggregate, &baseline)
        .map(|t| t.p_greater)
        .unwrap_or(1.0);

    // WITH traces: reconstruct, split by predicted version, compare the
    // two groups directly.
    let tw = TraceWeaver::new(call_graph, Params::with_dynamism());
    let result = tw.reconstruct_records(&out.records);
    let mut group_a = Vec::new();
    let mut group_b = Vec::new();
    for &(root, score, _) in &scores {
        let predicted_b = result
            .mapping
            .assemble(root)
            .rpcs()
            .any(|r| out.records[r.0 as usize].callee.service == rec_b);
        if predicted_b {
            group_b.push(score);
        } else {
            group_a.push(score);
        }
    }
    let p_with = welch_t_test(&group_b, &group_a)
        .map(|t| t.p_greater)
        .unwrap_or(1.0);

    (p_without, p_with)
}
