//! Vendored, offline subset of the `bytes` crate API.
//!
//! `Bytes` is a cheaply cloneable shared byte buffer with a read cursor;
//! `BytesMut` is a growable buffer. Both are `Vec`-backed: this trades the
//! upstream crate's zero-copy slicing for simplicity, which is fine for
//! the wire-codec workloads in this workspace (frames are short-lived).

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

use std::ops::Deref;
use std::sync::Arc;

/// Read-side byte buffer: shared storage plus a consume cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self[range])
    }

    /// Drop all remaining bytes.
    pub fn clear(&mut self) {
        self.start = self.data.len();
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Write-side growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact();
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` readable bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut {
            data: head,
            start: 0,
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data[self.start..].to_vec()),
            start: 0,
        }
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Drop already-consumed bytes so the buffer does not grow unboundedly
    /// under streaming use.
    fn compact(&mut self) {
        if self.start > 0 {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read cursor over a byte buffer (subset of upstream `Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of BytesMut");
        self.start += n;
    }
}

/// Write cursor over a growable buffer (subset of upstream `BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 513);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn split_to_and_freeze() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"hello world");
        let head = buf.split_to(5);
        assert_eq!(&*head, b"hello");
        assert_eq!(&*buf, b" world");
        assert_eq!(&*head.freeze(), b"hello");
    }

    #[test]
    fn bytes_equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![9, 1, 2, 3]);
        a.advance(1);
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a, b);
    }
}
