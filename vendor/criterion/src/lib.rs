//! Vendored, offline criterion shim.
//!
//! Provides the API shape the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!`). Measurement is simple
//! wall-clock timing over a fixed iteration budget — adequate for
//! relative comparisons, with none of upstream's statistical machinery.

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);

/// Set when the binary runs under `cargo test` (libtest passes `--test`
/// to `harness = false` targets). Each routine then runs exactly once as
/// a smoke test instead of being measured.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

#[doc(hidden)]
pub fn __init_from_args() {
    if std::env::args().any(|a| a == "--test") {
        TEST_MODE.store(true, Ordering::Relaxed);
    }
}

fn test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn final_summary(self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    pub fn finish(self) {}
}

/// How batched-setup inputs are sized; accepted for API parity only.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// Total time spent in measured routines.
    elapsed: Duration,
    /// Number of measured routine invocations.
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up once, then measure for the budget.
        std::hint::black_box(routine());
        if test_mode() {
            self.iterations = 1;
            return;
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            std::hint::black_box(routine());
            self.iterations += 1;
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        if test_mode() {
            self.iterations = 1;
            return;
        }
        let start = Instant::now();
        let mut measured = Duration::ZERO;
        while start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            self.iterations += 1;
        }
        self.elapsed = measured;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let per_iter = bencher.elapsed / bencher.iterations as u32;
        println!(
            "bench {name}: {per_iter:?}/iter ({} iters in {:?})",
            bencher.iterations, bencher.elapsed
        );
    } else {
        println!("bench {name}: no iterations recorded");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $crate::__init_from_args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
