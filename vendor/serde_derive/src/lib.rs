//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! Implemented directly over `proc_macro::TokenStream` (the offline build
//! has no `syn`/`quote`). Supports the shapes this workspace uses:
//!
//! * structs with named fields, tuple structs (newtype and wider), unit
//!   structs;
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, as upstream);
//! * field attributes `#[serde(rename = "...")]`, `#[serde(skip)]`,
//!   `#[serde(with = "module")]`.
//!
//! Generics on the deriving type are not supported (nothing in the
//! workspace derives on a generic type).

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    rename: Option<String>,
    skip: bool,
    with: Option<String>,
}

#[derive(Debug)]
struct Field {
    /// Field name (named structs/variants) or index (tuple).
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug)]
enum Shape {
    Unit,
    /// Tuple struct/variant with N fields (attrs per position).
    Tuple(Vec<FieldAttrs>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Self {
        Parser {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Collect attributes (`# [ ... ]`) in front of the cursor, returning
    /// the parsed serde attrs (other attributes are skipped).
    fn take_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while self.at_punct('#') {
            self.next(); // '#'
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("expected [...] after #");
            };
            parse_serde_attr(&g.stream(), &mut attrs);
        }
        attrs
    }

    /// Skip a visibility qualifier if present.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next(); // pub(crate) / pub(super)
            }
        }
    }

    /// Skip tokens of a type expression until a top-level comma (or end).
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

/// Parse the contents of one `#[...]` attribute group; record
/// serde-relevant keys.
fn parse_serde_attr(stream: &TokenStream, out: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    // Expect: serde ( ... )
    let [TokenTree::Ident(tag), TokenTree::Group(inner)] = &tokens[..] else {
        return; // #[doc = ...], #[derive(...)] leftovers, etc.
    };
    if tag.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(word) => {
                let word = word.to_string();
                // `key = "value"` or bare `key`
                let value = match (inner.get(i + 1), inner.get(i + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        i += 2;
                        Some(unquote(&lit.to_string()))
                    }
                    _ => None,
                };
                match (word.as_str(), value) {
                    ("rename", Some(v)) => out.rename = Some(v),
                    ("with", Some(v)) => out.with = Some(v),
                    ("skip", None) => out.skip = true,
                    ("skip_serializing", None) | ("skip_deserializing", None) => {
                        out.skip = true;
                    }
                    (other, _) => {
                        panic!("vendored serde_derive does not support #[serde({other} ...)]")
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("unexpected token in #[serde(...)]: {other}"),
        }
        i += 1;
    }
}

fn unquote(lit: &str) -> String {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_string()
    } else {
        panic!("expected string literal in serde attribute, got {lit}");
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut p = Parser::new(input);
    // Skip container attributes and visibility.
    let _container_attrs = p.take_attrs();
    p.skip_vis();

    let Some(TokenTree::Ident(kw)) = p.next() else {
        panic!("expected struct/enum keyword");
    };
    let kw = kw.to_string();
    let Some(TokenTree::Ident(name)) = p.next() else {
        panic!("expected type name after {kw}");
    };
    let name = name.to_string();
    if p.at_punct('<') {
        panic!("vendored serde_derive does not support generic type {name}");
    }

    match kw.as_str() {
        "struct" => {
            let shape = match p.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    parse_tuple_fields(g.stream())
                }
                Some(TokenTree::Punct(p2)) if p2.as_char() == ';' => Shape::Unit,
                other => panic!("unexpected token after struct {name}: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = p.next() else {
                panic!("expected {{...}} after enum {name}");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("derive target must be a struct or enum, found {other}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Shape {
    let mut p = Parser::new(stream);
    let mut fields = Vec::new();
    while p.peek().is_some() {
        let attrs = p.take_attrs();
        p.skip_vis();
        let Some(TokenTree::Ident(fname)) = p.next() else {
            panic!("expected field name");
        };
        let Some(TokenTree::Punct(colon)) = p.next() else {
            panic!("expected : after field {fname}");
        };
        assert_eq!(colon.as_char(), ':', "expected : after field {fname}");
        p.skip_type();
        if p.at_punct(',') {
            p.next();
        }
        fields.push(Field {
            name: fname.to_string(),
            attrs,
        });
    }
    Shape::Named(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Shape {
    let mut p = Parser::new(stream);
    let mut attrs_per_field = Vec::new();
    while p.peek().is_some() {
        let attrs = p.take_attrs();
        p.skip_vis();
        p.skip_type();
        if p.at_punct(',') {
            p.next();
        }
        attrs_per_field.push(attrs);
    }
    Shape::Tuple(attrs_per_field)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut p = Parser::new(stream);
    let mut variants = Vec::new();
    while p.peek().is_some() {
        let _attrs = p.take_attrs();
        let Some(TokenTree::Ident(vname)) = p.next() else {
            panic!("expected variant name");
        };
        let shape = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = parse_named_fields(g.stream());
                p.next();
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = parse_tuple_fields(g.stream());
                p.next();
                s
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant `= expr`.
        if p.at_punct('=') {
            while p.peek().is_some() && !p.at_punct(',') {
                p.next();
            }
        }
        if p.at_punct(',') {
            p.next();
        }
        variants.push(Variant {
            name: vname.to_string(),
            shape,
        });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

/// Expression serializing `&expr` under the field's attrs.
fn ser_expr(expr: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!(
            "{path}::serialize(&{expr}, ::serde::ValueSerializer)\
             .expect(\"ValueSerializer is infallible\")"
        ),
        None => format!("::serde::Serialize::to_value(&{expr})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = ser_shape_expr(shape, &|i, f| match f {
                Some(field) => format!("self.{}", field.name),
                None => format!("self.{i}"),
            });
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    Shape::Tuple(attrs) => {
                        let binds: Vec<String> =
                            (0..attrs.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if attrs.len() == 1 {
                            ser_expr("*__f0", &attrs[0])
                        } else {
                            let elems: Vec<String> = attrs
                                .iter()
                                .enumerate()
                                .map(|(i, a)| ser_expr(&format!("*__f{i}"), a))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut entries = String::new();
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            entries.push_str(&format!(
                                "(\"{}\".to_string(), {}),",
                                f.key(),
                                ser_expr(&format!("*{}", f.name), &f.attrs)
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), \
                                 ::serde::Value::Map(vec![{entries}]))]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// Serialize expression for a struct-shaped payload; `access` maps a field
/// position/definition to the Rust expression reading it.
fn ser_shape_expr(shape: &Shape, access: &dyn Fn(usize, Option<&Field>) -> String) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(attrs) if attrs.len() == 1 => ser_expr(&access(0, None), &attrs[0]),
        Shape::Tuple(attrs) => {
            let elems: Vec<String> = attrs
                .iter()
                .enumerate()
                .map(|(i, a)| ser_expr(&access(i, None), a))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::Named(fields) => {
            let mut entries = String::new();
            for (i, f) in fields.iter().enumerate() {
                if f.attrs.skip {
                    continue;
                }
                entries.push_str(&format!(
                    "(\"{}\".to_string(), {}),",
                    f.key(),
                    ser_expr(&access(i, Some(f)), &f.attrs)
                ));
            }
            format!("::serde::Value::Map(vec![{entries}])")
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

/// Expression deserializing owned `serde::Value` expression `vexpr` under
/// the field's attrs; evaluates to `Result<T, DeError>`-unwrapped via `?`.
fn de_expr(vexpr: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!("{path}::deserialize(::serde::ValueDeserializer({vexpr}))?"),
        None => format!("::serde::Deserialize::from_value({vexpr})?"),
    }
}

/// Field initializer for a named field taken out of map `__map`.
fn named_field_init(owner: &str, f: &Field) -> String {
    if f.attrs.skip {
        return format!("{}: ::core::default::Default::default(),", f.name);
    }
    let key = f.key();
    // Missing keys fall back to `Value::Null` so `Option` fields read as
    // `None` (upstream behavior); non-optional fields then report a clear
    // error from their own `from_value`.
    let fetch = format!(
        "__map.take_entry(\"{key}\")\
         .unwrap_or(::serde::Value::Null)"
    );
    format!(
        "{}: {}.map_err(|e| ::serde::DeError::custom(\
             format!(\"{owner}.{key}: {{e}}\")))?,",
        f.name,
        de_result_expr(&fetch, &f.attrs)
    )
}

/// Like [`de_expr`] but evaluating to the `Result` (no `?`).
fn de_result_expr(vexpr: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!("{path}::deserialize(::serde::ValueDeserializer({vexpr}))"),
        None => format!("::serde::Deserialize::from_value({vexpr})"),
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!(
                    "match value {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::DeError::custom(format!(\
                             \"expected null for unit struct {name}, got {{other:?}}\"))),\n\
                     }}"
                ),
                Shape::Tuple(attrs) if attrs.len() == 1 => {
                    format!("Ok({name}({}))", de_expr("value", &attrs[0]))
                }
                Shape::Tuple(attrs) => {
                    let n = attrs.len();
                    let elems: Vec<String> = attrs
                        .iter()
                        .map(|a| de_expr("__it.next().expect(\"length checked\")", a))
                        .collect();
                    format!(
                        "match value {{\n\
                             ::serde::Value::Seq(__items) if __items.len() == {n} => {{\n\
                                 let mut __it = __items.into_iter();\n\
                                 Ok({name}({}))\n\
                             }}\n\
                             other => Err(::serde::DeError::custom(format!(\
                                 \"expected sequence of {n} for {name}, got {{other:?}}\"))),\n\
                         }}",
                        elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: String = fields.iter().map(|f| named_field_init(name, f)).collect();
                    format!(
                        "{{\n\
                             let mut __map = value;\n\
                             if !matches!(__map, ::serde::Value::Map(_)) {{\n\
                                 return Err(::serde::DeError::custom(format!(\
                                     \"expected map for struct {name}, got {{__map:?}}\")));\n\
                             }}\n\
                             Ok({name} {{ {inits} }})\n\
                         }}"
                    )
                }
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: ::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            // Unit variants match on strings; payload variants match on a
            // single-entry map keyed by the variant name.
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(attrs) if attrs.len() == 1 => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}({})),\n",
                            de_expr("__payload", &attrs[0])
                        ));
                    }
                    Shape::Tuple(attrs) => {
                        let n = attrs.len();
                        let elems: Vec<String> = attrs
                            .iter()
                            .map(|a| de_expr("__it.next().expect(\"length checked\")", a))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => {{\n\
                                     let mut __it = __items.into_iter();\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}\n\
                                 other => Err(::serde::DeError::custom(format!(\
                                     \"expected sequence of {n} for {name}::{vn}, \
                                      got {{other:?}}\"))),\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| named_field_init(&format!("{name}::{vn}"), f))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let mut __map = __payload;\n\
                                 if !matches!(__map, ::serde::Value::Map(_)) {{\n\
                                     return Err(::serde::DeError::custom(format!(\
                                         \"expected map for {name}::{vn}, got {{__map:?}}\")));\n\
                                 }}\n\
                                 Ok({name}::{vn} {{ {inits} }})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: ::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::custom(format!(\
                                     \"unknown unit variant {{other}} for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = __entries.into_iter().next()\
                                     .expect(\"length checked\");\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => Err(::serde::DeError::custom(format!(\
                                         \"unknown variant {{other}} for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::custom(format!(\
                                 \"expected variant of {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
