//! Vendored, offline subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! interface (`lock()`/`read()`/`write()` return guards directly). A
//! poisoned std lock means a writer panicked mid-critical-section; this
//! shim follows parking_lot semantics by continuing with the inner data
//! (parking_lot locks are never poisoned).

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

use std::sync::{self, TryLockError};

/// Non-poisoning mutex with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable passthrough.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's wait consumes the guard; emulate parking_lot's
        // in-place wait by taking and restoring via unsafe pointer juggling
        // is not worth it — instead expose the std-style consuming wait.
        // (No consumer in this workspace uses Condvar::wait on the shim.)
        let _ = guard;
        unimplemented!("Condvar::wait is not used by this workspace");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
