//! Vendored, offline `serde_json` look-alike over the vendored serde
//! shim's [`serde::Value`] data model.
//!
//! Provides the workspace's used surface: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], and [`from_str`]. The printer
//! emits compact JSON with `{:?}`-formatted floats (shortest round-trip
//! representation, as upstream); the parser is a straightforward
//! recursive-descent JSON reader.

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for io::Error {
    fn from(e: Error) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.0)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::msg)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` prints the shortest string that round-trips, matching
        // upstream's float formatting closely enough for tests/goldens.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity; upstream errors, we emit null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(value).map_err(Error::from)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at offset {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character {:?} at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::msg(format!("invalid escape {other:?}")));
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::msg("invalid \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let s = to_string(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn floats_round_trip_exactly() {
        let xs = vec![1.5f64, 0.1, -3.25e-7, 1e20];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn strings_with_escapes() {
        let orig = "line1\nline2\t\"quoted\" \\slash\\ unicode: \u{1F600}".to_string();
        let s = to_string(&orig).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, orig);
    }

    #[test]
    fn nested_object_parses() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": true}}"#).unwrap();
        let Value::Map(entries) = v else {
            panic!("expected map")
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let s = to_string_pretty(&vec![1u64, 2]).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2]);
    }

    #[test]
    fn error_converts_to_io_error() {
        let e: io::Error = Error::msg("boom").into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }
}
