//! Work-stealing deques with the crossbeam-deque API shape.
//!
//! An [`Injector`] is a shared FIFO for task injection; each worker thread
//! owns a [`Worker`] deque (LIFO pop for locality) and hands out
//! [`Stealer`] handles that take from the opposite end (FIFO steal).
//! Mutex-backed rather than lock-free: steals serialize on a per-deque
//! lock, which is more than adequate at reconstruction-task granularity
//! (each task is milliseconds of work).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// A race was lost; the caller may retry.
    Retry,
}

impl<T> Steal<T> {
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// If this is `Success`, keep it; otherwise evaluate `f`. A `Retry`
    /// on either side survives an `Empty` on the other, so callers know
    /// to try again.
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Success(v) => Steal::Success(v),
            Steal::Empty => f(),
            Steal::Retry => match f() {
                Steal::Success(v) => Steal::Success(v),
                _ => Steal::Retry,
            },
        }
    }
}

/// Folds steal attempts: the first `Success` short-circuits; otherwise
/// any `Retry` wins over all-`Empty`.
impl<T> FromIterator<Steal<T>> for Steal<T> {
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
        let mut saw_retry = false;
        for s in iter {
            match s {
                Steal::Success(v) => return Steal::Success(v),
                Steal::Retry => saw_retry = true,
                Steal::Empty => {}
            }
        }
        if saw_retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

/// Shared FIFO task injector.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Steal a batch into `dest`, returning the first stolen task.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = self.queue.lock().unwrap();
        let n = queue.len();
        if n == 0 {
            return Steal::Empty;
        }
        // Take up to half the queue (at least one).
        let take = n.div_ceil(2);
        let first = queue.pop_front().expect("non-empty");
        let mut dest_q = dest.inner.lock().unwrap();
        for _ in 1..take {
            if let Some(v) = queue.pop_front() {
                dest_q.push_back(v);
            }
        }
        Steal::Success(first)
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

/// A worker-owned deque. `pop` takes from the back (LIFO); stealers take
/// from the front (FIFO).
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Worker::new_fifo()
    }
}

impl<T> Worker<T> {
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn new_lifo() -> Self {
        // The shim's pop is always LIFO; construction parity only.
        Worker::new_fifo()
    }

    pub fn push(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_back()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.clone(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// Handle for stealing from another worker's deque.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().unwrap().pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pops_lifo_stealer_takes_fifo() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_steal_moves_half() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let first = inj.steal_batch_and_pop(&w);
        assert_eq!(first, Steal::Success(0));
        assert_eq!(w.len(), 4); // half of 10 minus the popped one
        assert_eq!(inj.len(), 5);
    }

    #[test]
    fn concurrent_stealing_delivers_each_task_once() {
        let inj = Arc::new(Injector::new());
        for i in 0..1000 {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = inj.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Steal::Success(v) = inj.steal() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
