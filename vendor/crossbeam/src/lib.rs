//! Vendored, offline subset of the `crossbeam` crate API.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`channel`] — MPMC channels with the crossbeam API shape (cloneable
//!   senders *and* receivers, bounded back-pressure, disconnect on last
//!   sender drop). Implemented over `Mutex<VecDeque>` + condvars rather
//!   than upstream's lock-free internals: same semantics, adequate
//!   throughput for span-ingestion workloads.
//! * [`deque`] — work-stealing deques (`Worker`/`Stealer`/`Injector`)
//!   with the crossbeam-deque API shape, used by the reconstruction
//!   executor. Mutex-backed; steals are coarse-grained but correct.

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

pub mod channel;
pub mod deque;
