//! MPMC channels with the crossbeam-channel API shape.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is full; the message is handed back.
    Full(T),
    /// All receivers are gone; the message is handed back.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "recv timed out"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half; clone freely across producer threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely across consumer threads (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Channel with unbounded buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Channel holding at most `cap` messages; sends block when full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake all blocked receivers so they observe the
            // disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver: wake blocked senders so they error out.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full. Errors
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap();
        if let Some(cap) = shared.capacity {
            while queue.len() >= cap {
                if shared.disconnected_rx() {
                    return Err(SendError(value));
                }
                queue = shared.not_full.wait(queue).unwrap();
            }
        }
        if shared.disconnected_rx() {
            return Err(SendError(value));
        }
        queue.push_back(value);
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send: errors with [`TrySendError::Full`] instead of
    /// waiting when a bounded channel is at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap();
        if shared.disconnected_rx() {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message or sender-side disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.disconnected_tx() {
                return Err(RecvError);
            }
            queue = shared.not_empty.wait(queue).unwrap();
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            shared.not_full.notify_one();
            return Ok(v);
        }
        if shared.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = q;
            if res.timed_out() && queue.is_empty() {
                if shared.disconnected_tx() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Blocking iterator: yields until the channel is empty *and*
    /// disconnected.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator over currently buffered messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<i32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.iter().collect::<Vec<i32>>());
        let mut a: Vec<i32> = rx.iter().collect();
        let b = h.join().unwrap();
        a.extend(b);
        a.sort_unstable();
        assert_eq!(a, (0..100).collect::<Vec<_>>());
    }
}
