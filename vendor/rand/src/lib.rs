//! Vendored, offline subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of `rand` it actually uses: a seedable
//! deterministic RNG (`StdRng`), the [`Rng`] extension methods `gen`,
//! `gen_range` and `gen_bool`, and the [`SeedableRng::seed_from_u64`]
//! constructor. The backend is xoshiro256** seeded through SplitMix64 —
//! not the same stream as upstream `StdRng` (ChaCha12), but every consumer
//! in this repository only relies on *determinism given a seed* and sound
//! statistical quality, both of which xoshiro256** provides.

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

pub mod rngs {
    pub use crate::StdRng;
}

/// Core RNG abstraction: a source of random `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Seedable RNGs (subset: `seed_from_u64` and `from_seed` over 32 bytes).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision (upstream convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free bounded sampling
                // (Lemire); bias is < 2^-64, irrelevant for simulation use.
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let word = rng.next_u64() as u128;
                let off = (word * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Extension methods over any [`RngCore`] (subset of upstream `Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seedable RNG: xoshiro256** with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Convenience thread RNG look-alike: deterministic per call site is not
/// required by this workspace; seeded from the system clock.
pub fn thread_rng() -> StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x1234_5678);
    StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
