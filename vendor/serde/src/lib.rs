//! Vendored, offline serde look-alike.
//!
//! The build environment cannot reach crates.io, so this workspace ships
//! its own minimal (de)serialization framework under the `serde` name.
//! The public surface mirrors what the workspace uses — `Serialize` /
//! `Deserialize` traits, `#[derive(Serialize, Deserialize)]`, and the
//! `rename` / `skip` / `with` field attributes — but the data model is a
//! simple owned [`Value`] tree rather than upstream's visitor machinery:
//!
//! * `Serialize` produces a [`Value`];
//! * `Deserialize` consumes a [`Value`];
//! * `Serializer` / `Deserializer` are thin adapters so hand-written
//!   `with`-style modules (`fn serialize<S: Serializer>(..)`) keep their
//!   upstream signatures.
//!
//! `serde_json` (also vendored) renders `Value` to JSON text and parses
//! it back.

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// The owned data-model tree every type (de)serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up and remove a key from a map value.
    pub fn take_entry(&mut self, key: &str) -> Option<Value> {
        if let Value::Map(entries) = self {
            let idx = entries.iter().position(|(k, _)| k == key)?;
            Some(entries.remove(idx).1)
        } else {
            None
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize: convert a value into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;

    /// Upstream-shaped entry point used by `with`-modules.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// Deserialize: reconstruct a value from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    fn from_value(value: Value) -> Result<Self, DeError>;

    /// Upstream-shaped entry point used by `with`-modules.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(value).map_err(D::lift_error)
    }
}

/// Deserialize without borrowed data (all our types are owned).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Upstream module-path parity (`serde::de::DeserializeOwned`, ...).
pub mod de {
    pub use crate::{DeError, Deserialize, DeserializeOwned, Deserializer};
}

/// Upstream module-path parity (`serde::ser::Serializer`, ...).
pub mod ser {
    pub use crate::{Serialize, Serializer};
}

/// A sink accepting one [`Value`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error;

    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source yielding one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error;

    fn take_value(self) -> Result<Value, Self::Error>;
    fn lift_error(e: DeError) -> Self::Error;
}

/// Serializer that just hands back the [`Value`] (used by derive code for
/// `with`-modules).
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;

    fn serialize_value(self, value: Value) -> Result<Value, DeError> {
        Ok(value)
    }
}

/// Deserializer over an owned [`Value`] (used by derive code for
/// `with`-modules and by `serde_json`).
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }

    fn lift_error(e: DeError) -> DeError {
        e
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_int_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
macro_rules! ser_int_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_int_signed!(i8, i16, i32, i64, isize);
ser_int_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|v| v.to_value()).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys must render as JSON strings. Numeric keys stringify (matching
/// upstream serde_json's integer-key behavior); numeric [`Deserialize`]
/// impls accept digit strings back, closing the round trip.
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!(
            "map key must serialize to a string or integer, got {}",
            other.kind()
        ),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        // HashMap iteration order is unstable; sort for deterministic
        // output (upstream leaves this to the map type, but deterministic
        // JSON makes golden files and tests reproducible).
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

/// Total order over [`Value`] used to emit sets deterministically
/// (HashSet iteration order is unstable across runs).
fn value_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Seq(_) => 4,
            Value::Map(_) => 5,
        }
    }
    fn as_f64(v: &Value) -> f64 {
        match v {
            Value::I64(n) => *n as f64,
            Value::U64(n) => *n as f64,
            Value::F64(f) => *f,
            _ => 0.0,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let c = value_cmp(xa, ya);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => x.len().cmp(&y.len()),
        (x, y) if rank(x) == 2 && rank(y) == 2 => {
            as_f64(x).partial_cmp(&as_f64(y)).unwrap_or(Ordering::Equal)
        }
        (x, y) => rank(x).cmp(&rank(y)),
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(|v| v.to_value()).collect();
        items.sort_by(value_cmp);
        Value::Seq(items)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", &other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn int_from_value(v: Value) -> Result<i128, DeError> {
    match v {
        Value::I64(n) => Ok(n as i128),
        Value::U64(n) => Ok(n as i128),
        Value::F64(f) if f.fract() == 0.0 => Ok(f as i128),
        // Integer map keys arrive as strings; accept digit strings.
        Value::Str(s) => s
            .parse::<i128>()
            .map_err(|_| DeError(format!("invalid integer string {s:?}"))),
        other => Err(DeError::expected("integer", &other)),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: Value) -> Result<Self, DeError> {
                let wide = int_from_value(v)?;
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            other => Err(DeError::expected("float", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(DeError::expected("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s),
            other => Err(DeError::expected("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($( {
                            let _ = $n; // positional marker
                            $t::from_value(it.next().expect("length checked"))?
                        } ,)+))
                    }
                    Value::Seq(items) => Err(DeError(format!(
                        "expected tuple of length {}, got sequence of {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(DeError::expected("sequence", &other)),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((K::from_value(Value::Str(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", &other)),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_value(v: Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((K::from_value(Value::Str(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: Value) -> Result<Self, DeError> {
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value((-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(true.to_value()), Ok(true));
        assert_eq!(
            String::from_value("hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(Value::U64(3)), Ok(Some(3)));
    }

    #[test]
    fn numeric_map_keys_round_trip() {
        let mut m: HashMap<u64, String> = HashMap::new();
        m.insert(5, "five".into());
        let v = m.to_value();
        let back = HashMap::<u64, String>::from_value(v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_and_vecs() {
        let x = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u32, String)>::from_value(x.to_value()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn fixed_arrays() {
        let a = [1u64, 2, 3, 4];
        let back = <[u64; 4]>::from_value(a.to_value()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(Value::U64(300)).is_err());
    }
}
