//! Vendored, offline property-testing shim with a proptest-shaped API.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test RNG (seeded from the test name) and failures panic directly
//! without shrinking. The strategy combinators the workspace uses —
//! ranges, tuples, `prop_map`, `prop_flat_map`, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, and simple `"[a-z]{m,n}"` string
//! patterns — are supported.

// Vendored stand-in code: keep it lint-quiet rather than idiomatic.
#![allow(clippy::all)]

use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------------

/// Deterministic test RNG. Seeded from the test name so every run of a
/// given test explores the same cases.
pub struct TestRng(u64);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply bounded sampling; bias is negligible for test
        // generation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// String pattern strategies ("[a-z]{1,8}"-style)
// ---------------------------------------------------------------------------

/// `&str` strategies treat the string as a (tiny subset of a) regex
/// pattern: one character class with a `{min,max}` repetition.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_simple_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parse patterns of the form `[a-zA-Z0-9_]{m,n}` (ranges and literal
/// characters inside the class). Panics on anything fancier.
fn parse_simple_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bad(pattern: &str) -> ! {
        panic!(
            "vendored proptest only supports \"[class]{{m,n}}\" string patterns, got {pattern:?}"
        )
    }
    let Some(rest) = pattern.strip_prefix('[') else {
        bad(pattern)
    };
    let Some((class, rest)) = rest.split_once(']') else {
        bad(pattern)
    };
    let Some(rep) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        bad(pattern)
    };
    let parse_len = |s: &str| -> usize {
        match s.trim().parse() {
            Ok(n) => n,
            Err(_) => bad(pattern),
        }
    };
    let (min, max) = match rep.split_once(',') {
        Some((a, b)) => (parse_len(a), parse_len(b)),
        None => {
            let n = parse_len(rep);
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let class_chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class_chars.len() {
        if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
            let (lo, hi) = (class_chars[i], class_chars[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class_chars[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        bad(pattern);
    }
    (chars, min, max)
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// prop:: module (collection, option)
// ---------------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specification: a fixed length or a half-open range.
        pub trait SizeRange {
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                Strategy::sample(self, rng)
            }
        }

        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }

    pub mod option {
        use crate::{Strategy, TestRng};

        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Upstream defaults to 50% Some; keep a bias toward Some so
                // optional fields get exercised.
                if rng.next_u64() % 4 == 0 {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }

        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Define property tests. Each case samples fresh inputs from the
/// strategies; assertion failures panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_samples_class() {
        let mut rng = TestRng::for_test("string_pattern_samples_class");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = prop::collection::vec(0u32..100, 0..20);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_compiles_and_runs(x in 0u32..50, ys in prop::collection::vec(0u8..4, 1..5)) {
            prop_assert!(x < 50);
            prop_assert!(!ys.is_empty());
        }
    }
}
